//! Pluggable compaction strategies: size-tiered and date-tiered.
//!
//! The baseline policies of [`crate::compaction`] (and FADE in `lethe-core`)
//! reorganise the tree one *file* at a time under leveling, or one whole
//! *level* at a time under tiering. The strategies here exploit the same
//! [`crate::compaction::CompactionPolicy`] seam with two finer-grained
//! layouts borrowed from production engines:
//!
//! * [`SizeTieredPolicy`] — bucket each level's runs by size class (powers of
//!   the fan-in over the buffer size) and merge a class once `fan_in` runs of
//!   it accumulate. Small fresh runs merge with small fresh runs; a large old
//!   run is rewritten only when enough peers of its own size exist, which is
//!   what keeps write amplification below leveling on append-heavy
//!   workloads.
//! * [`DateTieredPolicy`] — bucket runs into aligned time windows over the
//!   delete key (Lethe's creation-timestamp attribute). Window widths grow
//!   with age along a geometric ladder (base width × `fan_in` per rung, the
//!   classic 4 MB → 4 GB-style progression), and **windows never merge across
//!   boundaries**, so every file holds a disjoint time range. That layout is
//!   the natural amplifier for FADE's delete guarantees: once a retention TTL
//!   expires, an entire window is stale *as whole files* and the policy
//!   retires it with [`CompactionTask::DropFiles`] — zero pages read or
//!   written.
//!
//! Both strategies require [`MergePolicy::Tiering`](crate::config::MergePolicy)
//! (enforced by [`LsmConfig::validate`](crate::config::LsmConfig::validate)):
//! flushes must *append* runs for there to be same-sized / same-windowed runs
//! to bucket at all.
//!
//! ## Why merges take only adjacent runs, and replace them in place
//!
//! Reads resolve key versions by recency: shallower level first, then newer
//! run first within a level. A merge that combined runs *around* a surviving
//! run of intermediate recency would put versions older than the survivor
//! and versions newer than it into one output run, which no single position
//! in the run list can order correctly. Both strategies therefore only ever
//! propose a **contiguous** group of a level's runs via
//! [`CompactionTask::MergeRuns`], whose planner rejects anything else; the
//! merged run replaces the group at its own position, so the order of
//! everything around it is untouched. When several groups are ready the
//! oldest merges first — old runs are the ones TTL retirement and tombstone
//! persistence are waiting on.

use crate::compaction::{CompactionPolicy, CompactionTask, TreeView};
use crate::level::Run;
use lethe_storage::Timestamp;

/// Upper bound on ladder rungs: window widths stop growing after
/// `base × fan_in^MAX_LADDER_RUNGS` (with the 4 MB base and fan-in 4 of the
/// classic ladder that is the 4 GB top rung). A cap keeps very old data in
/// bounded-width windows instead of one unbounded "everything ancient"
/// window that a TTL could never retire in one piece.
pub const MAX_LADDER_RUNGS: u32 = 5;

/// Scans `runs` oldest-first for a contiguous group of at least `fan_in`
/// runs sharing one bucket label and returns the ids of every file of the
/// oldest such group. `label` maps a run to its bucket; runs labelled `None`
/// (empty runs) break a group.
fn oldest_group_sharing_label<L: PartialEq>(
    runs: &[Run],
    fan_in: usize,
    label: impl Fn(&Run) -> Option<L>,
) -> Option<Vec<u64>> {
    let mut group_end = runs.len(); // exclusive end of the current group
    let mut current: Option<L> = None;
    let mut count = 0;
    for (i, run) in runs.iter().enumerate().rev() {
        let l = label(run);
        if l.is_some() && l == current {
            count += 1;
        } else {
            if count >= fan_in {
                break;
            }
            current = l;
            count = if current.is_some() { 1 } else { 0 };
            group_end = i + 1;
        }
    }
    if count < fan_in {
        return None;
    }
    let ids: Vec<u64> = runs[group_end - count..group_end]
        .iter()
        .flat_map(|r| r.tables().iter().map(|t| t.meta.id))
        .collect();
    Some(ids)
}

/// Size-tiered compaction: each level's runs are bucketed into geometric
/// size classes (class 0 holds runs up to one buffer's worth of bytes, each
/// further class `fan_in` times larger) and a class is merged into one run of
/// the next level once `fan_in` runs of it pile up at the old end of the
/// level.
#[derive(Debug, Clone)]
pub struct SizeTieredPolicy {
    fan_in: usize,
}

impl SizeTieredPolicy {
    /// Creates the policy; `fan_in` is clamped to at least 2.
    pub fn new(fan_in: usize) -> Self {
        SizeTieredPolicy { fan_in: fan_in.max(2) }
    }

    /// Geometric size class of a run: the smallest `c` with
    /// `bytes ≤ base · fan_in^c`, where `base` is the buffer capacity.
    fn size_class(&self, bytes: u64, base: u64) -> u32 {
        let mut class = 0;
        let mut cap = base.max(1);
        while bytes > cap {
            cap = cap.saturating_mul(self.fan_in as u64);
            class += 1;
        }
        class
    }
}

impl CompactionPolicy for SizeTieredPolicy {
    fn pick(&mut self, view: &TreeView<'_>) -> Option<CompactionTask> {
        let base = view.config.buffer_capacity_bytes() as u64;
        for (level, l) in view.levels.iter().enumerate() {
            let picked = oldest_group_sharing_label(&l.runs, self.fan_in, |run| {
                if run.is_empty() {
                    None
                } else {
                    Some(self.size_class(run.total_bytes(), base))
                }
            });
            if let Some(file_ids) = picked {
                return Some(CompactionTask::MergeRuns { level, file_ids });
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "size-tiered"
    }
}

/// Date-tiered compaction: runs are bucketed into aligned time windows over
/// the delete key, window widths growing geometrically with age, and a base
/// window wholly past the retention TTL is retired via whole-file drops.
#[derive(Debug, Clone)]
pub struct DateTieredPolicy {
    base_window_micros: Timestamp,
    fan_in: usize,
    ttl_micros: Option<Timestamp>,
}

impl DateTieredPolicy {
    /// Creates the policy; `base_window_micros` is clamped to at least 1 and
    /// `fan_in` to at least 2. `ttl_micros = None` disables whole-file drops.
    pub fn new(base_window_micros: Timestamp, fan_in: usize, ttl_micros: Option<Timestamp>) -> Self {
        DateTieredPolicy {
            base_window_micros: base_window_micros.max(1),
            fan_in: fan_in.max(2),
            ttl_micros,
        }
    }

    /// Ladder window containing timestamp `ts` as seen at time `now`:
    /// `(rung, index)` where the window width is `base × fan_in^rung`
    /// (rungs capped at [`MAX_LADDER_RUNGS`]), the rung is the smallest one
    /// whose width covers the timestamp's age, and `index` is the aligned
    /// window number at that width. Two timestamps share a window iff both
    /// components match.
    fn window_of(&self, ts: Timestamp, now: Timestamp) -> (u32, Timestamp) {
        let age = now.saturating_sub(ts);
        let mut rung = 0u32;
        let mut width = self.base_window_micros;
        while rung < MAX_LADDER_RUNGS && age > width.saturating_mul(self.fan_in as Timestamp) {
            width = width.saturating_mul(self.fan_in as Timestamp);
            rung += 1;
        }
        (rung, ts / width)
    }

    /// End of the *base-width* aligned window containing `ts`. Drops work at
    /// base-window granularity: a file is wholly expired once the base
    /// window its newest timestamp falls in ends at or before `now − ttl`,
    /// regardless of which ladder rung currently buckets it.
    fn base_window_end(&self, ts: Timestamp) -> Timestamp {
        (ts / self.base_window_micros).saturating_add(1).saturating_mul(self.base_window_micros)
    }

    /// Every file (across all levels) that is wholly expired and safe to
    /// retire without reading: its newest delete key sits in a base window
    /// that ended at or before `now − ttl`, and it holds **no tombstones** —
    /// dropping a tombstone-bearing file could resurrect an older surviving
    /// version of a deleted key elsewhere in the tree.
    fn expired_file_ids(&self, view: &TreeView<'_>) -> Vec<u64> {
        let Some(ttl) = self.ttl_micros else {
            return Vec::new();
        };
        let cutoff = view.now.saturating_sub(ttl);
        view.levels
            .iter()
            .flat_map(|l| l.all_tables())
            .filter(|t| !t.has_tombstones() && self.base_window_end(t.meta.max_delete) <= cutoff)
            .map(|t| t.meta.id)
            .collect()
    }

    /// The next window merge, if any level's oldest runs have accumulated
    /// `fan_in` runs of one ladder window.
    fn pick_merge(&self, view: &TreeView<'_>) -> Option<CompactionTask> {
        for (level, l) in view.levels.iter().enumerate() {
            let picked = oldest_group_sharing_label(&l.runs, self.fan_in, |run| {
                run.tables()
                    .iter()
                    .map(|t| t.meta.max_delete)
                    .max()
                    .map(|newest| self.window_of(newest, view.now))
            });
            if let Some(file_ids) = picked {
                return Some(CompactionTask::MergeRuns { level, file_ids });
            }
        }
        None
    }
}

impl CompactionPolicy for DateTieredPolicy {
    fn pick(&mut self, view: &TreeView<'_>) -> Option<CompactionTask> {
        let drop = || {
            let ids = self.expired_file_ids(view);
            if ids.is_empty() {
                None
            } else {
                Some(CompactionTask::DropFiles { file_ids: ids })
            }
        };
        if view.tombstone_gc_gated {
            // A live snapshot pins the expired window: propose merges first
            // so maintenance keeps making progress, then still surface the
            // drop — the planner refuses it through the snapshot gate and
            // counts the delay in `TreeStats::tombstone_gc_delayed`.
            self.pick_merge(view).or_else(drop)
        } else {
            drop().or_else(|| self.pick_merge(view))
        }
    }

    fn name(&self) -> &'static str {
        "date-tiered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LsmConfig, MergePolicy};
    use crate::level::Level;
    use crate::sstable::SsTable;
    use bytes::Bytes;
    use lethe_storage::{Entry, Histogram, InMemoryBackend};
    use std::sync::Arc;

    /// Builds a table of `n` entries whose delete keys all equal `ts`; ids
    /// double as sort keys so tables never overlap.
    fn table(
        id: u64,
        n: u64,
        ts: Timestamp,
        tombstones: u64,
        backend: &InMemoryBackend,
    ) -> Arc<SsTable> {
        let cfg = LsmConfig::small_for_test();
        let lo = id * 10_000;
        let mut entries: Vec<Entry> =
            (lo..lo + n).map(|k| Entry::put(k, ts, k + 1, Bytes::from(vec![0u8; 64]))).collect();
        for i in 0..tombstones {
            entries.push(Entry::point_tombstone(lo + n + i, 1000 + i));
        }
        entries.sort_by_key(|e| e.sort_key);
        let oldest = if tombstones > 0 { Some(ts) } else { None };
        Arc::new(SsTable::build(id, entries, vec![], 0, oldest, &cfg, backend).unwrap())
    }

    fn view<'a>(
        levels: &'a [Level],
        cfg: &'a LsmConfig,
        hist: &'a Histogram,
        now: Timestamp,
        gated: bool,
    ) -> TreeView<'a> {
        TreeView {
            levels,
            capacities: vec![u64::MAX; levels.len()],
            now,
            config: cfg,
            sort_key_histogram: hist,
            tombstone_gc_gated: gated,
        }
    }

    fn tiering_cfg() -> LsmConfig {
        let mut cfg = LsmConfig::small_for_test();
        cfg.merge_policy = MergePolicy::Tiering;
        cfg
    }

    #[test]
    fn size_classes_are_geometric() {
        let p = SizeTieredPolicy::new(4);
        assert_eq!(p.size_class(0, 1024), 0);
        assert_eq!(p.size_class(1024, 1024), 0);
        assert_eq!(p.size_class(1025, 1024), 1);
        assert_eq!(p.size_class(4096, 1024), 1);
        assert_eq!(p.size_class(4097, 1024), 2);
    }

    #[test]
    fn size_tiered_merges_oldest_suffix_of_one_class() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        // newest-first: one big run in front, three small runs behind it
        levels[0].runs.push(Run::new(vec![table(9, 200, 0, 0, &backend)]));
        for id in 1..=3 {
            levels[0].runs.push(Run::new(vec![table(id, 4, 0, 0, &backend)]));
        }
        let mut p = SizeTieredPolicy::new(3);
        let task = p.pick(&view(&levels, &cfg, &hist, 0, false));
        // only the three small runs at the old end are picked — not file 9
        assert_eq!(
            task,
            Some(CompactionTask::MergeRuns { level: 0, file_ids: vec![1, 2, 3] })
        );
        assert_eq!(p.name(), "size-tiered");
    }

    #[test]
    fn size_tiered_waits_for_fan_in() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        for id in 1..=2 {
            levels[0].runs.push(Run::new(vec![table(id, 4, 0, 0, &backend)]));
        }
        let mut p = SizeTieredPolicy::new(3);
        assert!(p.pick(&view(&levels, &cfg, &hist, 0, false)).is_none());
    }

    #[test]
    fn ladder_windows_grow_with_age_and_cap() {
        let p = DateTieredPolicy::new(100, 4, None);
        let now = 1_000_000;
        // fresh timestamps sit on the base rung
        assert_eq!(p.window_of(now - 50, now).0, 0);
        // ancient timestamps climb the ladder but stop at the cap
        let (rung, _) = p.window_of(0, now);
        assert_eq!(rung, MAX_LADDER_RUNGS);
        // same base window ⇒ same bucket
        assert_eq!(p.window_of(now - 10, now), p.window_of(now - 20, now));
    }

    #[test]
    fn date_tiered_never_merges_across_window_boundaries() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let now = 10_000;
        let mut levels = vec![Level::new()];
        // two runs in window [9900, 10000), two in [9800, 9900): each window
        // is below the fan-in of 3, so nothing merges even though four runs
        // of identical size are stacked up.
        levels[0].runs.push(Run::new(vec![table(1, 4, 9_950, 0, &backend)]));
        levels[0].runs.push(Run::new(vec![table(2, 4, 9_960, 0, &backend)]));
        levels[0].runs.push(Run::new(vec![table(3, 4, 9_850, 0, &backend)]));
        levels[0].runs.push(Run::new(vec![table(4, 4, 9_860, 0, &backend)]));
        let mut p = DateTieredPolicy::new(100, 3, None);
        assert!(p.pick(&view(&levels, &cfg, &hist, now, false)).is_none());
        // a third run in the older window completes its fan-in; only the
        // oldest suffix (the three old-window runs) is merged
        levels[0].runs.push(Run::new(vec![table(5, 4, 9_870, 0, &backend)]));
        let task = p.pick(&view(&levels, &cfg, &hist, now, false));
        assert_eq!(
            task,
            Some(CompactionTask::MergeRuns { level: 0, file_ids: vec![3, 4, 5] })
        );
        assert_eq!(p.name(), "date-tiered");
    }

    #[test]
    fn date_tiered_drops_wholly_expired_windows_first() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let now = 10_000;
        let mut levels = vec![Level::new(), Level::new()];
        // fresh data in level 0, expired windows spread over both levels
        levels[0].runs.push(Run::new(vec![table(1, 4, 9_950, 0, &backend)]));
        levels[0].runs.push(Run::new(vec![table(2, 4, 500, 0, &backend)]));
        levels[1].runs.push(Run::new(vec![table(3, 4, 400, 0, &backend)]));
        let mut p = DateTieredPolicy::new(100, 2, Some(5_000));
        let task = p.pick(&view(&levels, &cfg, &hist, now, false));
        assert_eq!(task, Some(CompactionTask::DropFiles { file_ids: vec![2, 3] }));
    }

    #[test]
    fn expired_files_with_tombstones_are_never_dropped() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![table(1, 4, 500, 2, &backend)]));
        let mut p = DateTieredPolicy::new(100, 2, Some(1_000));
        // the file is far past the TTL but carries tombstones → no drop,
        // and a single run is below fan-in → no merge either
        assert!(p.pick(&view(&levels, &cfg, &hist, 100_000, false)).is_none());
    }

    #[test]
    fn ttl_boundary_is_respected() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![table(1, 4, 950, 0, &backend)]));
        let p = DateTieredPolicy::new(100, 2, Some(5_000));
        // base window [900, 1000) ends at 1000; expired only once
        // now − ttl ≥ 1000
        assert!(p.expired_file_ids(&view(&levels, &cfg, &hist, 5_999, false)).is_empty());
        assert_eq!(p.expired_file_ids(&view(&levels, &cfg, &hist, 6_000, false)), vec![1]);
    }

    #[test]
    fn gated_view_reorders_but_still_surfaces_the_drop() {
        let backend = InMemoryBackend::new();
        let cfg = tiering_cfg();
        let hist = Histogram::new(0, 1 << 20, 16);
        let now = 10_000;
        let mut levels = vec![Level::new()];
        // two mergeable fresh runs + one expired file
        levels[0].runs.push(Run::new(vec![table(1, 4, 9_950, 0, &backend)]));
        levels[0].runs.push(Run::new(vec![table(2, 4, 9_960, 0, &backend)]));
        let mut p = DateTieredPolicy::new(100, 2, Some(5_000));
        let mut levels2 = levels.clone();
        levels2[0].runs.push(Run::new(vec![table(3, 4, 500, 0, &backend)]));
        // ungated: the drop wins
        assert!(matches!(
            p.pick(&view(&levels2, &cfg, &hist, now, false)),
            Some(CompactionTask::DropFiles { .. })
        ));
        // gated: merge work proceeds first so a held snapshot cannot starve
        // compaction...
        assert!(matches!(
            p.pick(&view(&levels2, &cfg, &hist, now, true)),
            Some(CompactionTask::MergeRuns { .. })
        ));
        // ...and with no merges left the drop is still proposed (the planner
        // refuses it and counts the delay)
        let mut only_expired = vec![Level::new()];
        only_expired[0].runs.push(Run::new(vec![table(3, 4, 500, 0, &backend)]));
        assert!(matches!(
            p.pick(&view(&only_expired, &cfg, &hist, now, true)),
            Some(CompactionTask::DropFiles { .. })
        ));
    }
}
