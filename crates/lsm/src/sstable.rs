//! Sorted immutable files ("SSTables") with the Key Weaving Storage Layout.
//!
//! Every file is a sequence of **delete tiles**; a tile is a sequence of `h`
//! pages (paper §4.2.1):
//!
//! * files within a level are sorted and non-overlapping on the sort key `S`;
//! * delete tiles within a file are sorted on `S`;
//! * **pages within a delete tile are sorted on the delete key `D`**;
//! * entries within a page are sorted on `S`.
//!
//! With `h = 1` a tile is a single page and the layout degenerates to the
//! classic sort-key-only layout of state-of-the-art engines, so baselines and
//! Lethe share this one implementation.
//!
//! The file keeps per-page Bloom filters and delete fence pointers, and
//! per-tile fence pointers on `S`, entirely in memory (their footprint is
//! reported by [`SsTable::memory_footprint`]). Secondary range deletes are
//! served by [`SsTable::secondary_range_delete`], which drops fully-covered
//! pages without reading them (*full page drops*) and rewrites at most the
//! boundary pages of each tile (*partial page drops*).

use crate::config::LsmConfig;
use lethe_storage::{
    BloomFilter, DeleteFence, DeleteFences, DeleteKey, Entry, FencePointers, FileDesc, IoStats,
    Page, PageId, Result, SeqNum, SortKey, StorageBackend, StorageError, Timestamp,
};
use std::sync::Arc;

/// In-memory handle to one on-device page.
#[derive(Debug, Clone)]
pub struct PageHandle {
    /// Device page id.
    pub id: PageId,
    /// Bloom filter over the page's sort keys.
    pub bloom: BloomFilter,
    /// Smallest sort key stored in the page.
    pub min_sort: SortKey,
    /// Largest sort key stored in the page.
    pub max_sort: SortKey,
    /// Smallest delete key stored in the page.
    pub min_delete: DeleteKey,
    /// Largest delete key stored in the page.
    pub max_delete: DeleteKey,
    /// Number of entries in the page.
    pub num_entries: usize,
    /// Number of tombstones (point + range) in the page.
    pub num_tombstones: usize,
    /// Encoded size of the page's entries in bytes.
    pub data_bytes: usize,
}

impl PageHandle {
    fn from_page(id: PageId, page: &Page, bits_per_key: f64) -> Self {
        let mut bloom = BloomFilter::new(page.len().max(1), bits_per_key);
        for e in page.entries() {
            bloom.insert(e.sort_key);
        }
        PageHandle {
            id,
            bloom,
            min_sort: page.min_sort_key().unwrap_or(0),
            max_sort: page.max_sort_key().unwrap_or(0),
            min_delete: page.min_delete_key().unwrap_or(0),
            max_delete: page.max_delete_key().unwrap_or(0),
            num_entries: page.len(),
            num_tombstones: page.tombstone_count(),
            data_bytes: page.data_size(),
        }
    }
}

/// A delete tile: `h` pages whose union covers a contiguous range of sort
/// keys, internally ordered by delete key.
#[derive(Debug, Clone)]
pub struct DeleteTile {
    /// Page handles in delete-key order.
    pub pages: Vec<PageHandle>,
    /// Per-page delete-key bounds (the *delete fence pointers*).
    pub delete_fences: DeleteFences,
    /// Smallest sort key in the tile.
    pub min_sort: SortKey,
    /// Largest sort key in the tile.
    pub max_sort: SortKey,
}

impl DeleteTile {
    fn from_pages(pages: Vec<PageHandle>) -> Self {
        let delete_fences = DeleteFences::new(
            pages.iter().map(|p| DeleteFence { min: p.min_delete, max: p.max_delete }).collect(),
        );
        let min_sort = pages.iter().map(|p| p.min_sort).min().unwrap_or(0);
        let max_sort = pages.iter().map(|p| p.max_sort).max().unwrap_or(0);
        DeleteTile { pages, delete_fences, min_sort, max_sort }
    }

    /// Number of entries across all pages of the tile.
    pub fn num_entries(&self) -> usize {
        self.pages.iter().map(|p| p.num_entries).sum()
    }
}

/// Immutable metadata describing a file.
#[derive(Debug, Clone)]
pub struct SsTableMeta {
    /// Unique file id assigned by the tree.
    pub id: u64,
    /// Total number of entries (including tombstones) in the file.
    pub num_entries: u64,
    /// Number of point tombstones (RocksDB's `num_deletes`).
    pub num_point_tombstones: u64,
    /// Number of range tombstones stored in the file's range-tombstone block.
    pub num_range_tombstones: u64,
    /// Encoded data size of the file in bytes.
    pub data_bytes: u64,
    /// Smallest sort key in the file.
    pub min_sort: SortKey,
    /// Largest sort key in the file.
    pub max_sort: SortKey,
    /// Smallest delete key in the file.
    pub min_delete: DeleteKey,
    /// Largest delete key in the file.
    pub max_delete: DeleteKey,
    /// Logical time the file was created (flush or compaction output).
    pub created_at: Timestamp,
    /// Insertion time of the oldest tombstone contained in the file; `None`
    /// when the file holds no tombstones. The tombstone age `a_max` of the
    /// paper is `now - oldest_tombstone_ts`.
    pub oldest_tombstone_ts: Option<Timestamp>,
    /// Largest sequence number stored in the file.
    pub max_seqnum: SeqNum,
}

/// One immutable sorted file of the tree.
#[derive(Debug, Clone)]
pub struct SsTable {
    /// File metadata (the inputs to FADE's `a_max` and `b`).
    pub meta: SsTableMeta,
    /// Delete tiles, sorted on the sort key.
    pub tiles: Vec<DeleteTile>,
    /// Fence pointers on the sort key, one per delete tile.
    pub tile_fences: FencePointers,
    /// The file's range-tombstone block (kept in memory; range tombstones are
    /// rare and tiny).
    pub range_tombstones: Vec<Entry>,
    /// Lazily-built manifest descriptor; the file is immutable, so it is
    /// computed once and shared (by `Arc` identity) with the manifest's
    /// committed state, letting edits diff unchanged files by pointer.
    desc: std::sync::OnceLock<Arc<FileDesc>>,
}

/// Outcome counters of one secondary range delete over one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecondaryDeleteStats {
    /// Pages dropped in their entirety without being read.
    pub full_page_drops: u64,
    /// Pages read, filtered and rewritten because the delete range only
    /// partially covered them.
    pub partial_page_drops: u64,
    /// Pages left untouched.
    pub pages_untouched: u64,
    /// Entries removed from the file.
    pub entries_deleted: u64,
}

impl SecondaryDeleteStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &SecondaryDeleteStats) {
        self.full_page_drops += other.full_page_drops;
        self.partial_page_drops += other.partial_page_drops;
        self.pages_untouched += other.pages_untouched;
        self.entries_deleted += other.entries_deleted;
    }
}

impl SsTable {
    /// Builds a file from entries already sorted on the sort key (newest
    /// version per key only — the tree deduplicates before building) and a
    /// list of range tombstones, writing its pages to `backend`.
    ///
    /// `oldest_tombstone_ts` is the insertion time of the oldest tombstone
    /// among the inputs that ended up in this file; the caller (flush or
    /// compaction) tracks it.
    pub fn build(
        id: u64,
        entries: Vec<Entry>,
        range_tombstones: Vec<Entry>,
        created_at: Timestamp,
        oldest_tombstone_ts: Option<Timestamp>,
        config: &LsmConfig,
        backend: &dyn StorageBackend,
    ) -> Result<SsTable> {
        debug_assert!(entries.windows(2).all(|w| w[0].sort_key <= w[1].sort_key));
        let entries_per_page = config.entries_per_page.max(1);
        let entries_per_tile = config.entries_per_tile().max(1);

        let num_entries = (entries.len() + range_tombstones.len()) as u64;
        let num_point_tombstones = entries.iter().filter(|e| e.is_point_tombstone()).count() as u64;
        let num_range_tombstones = range_tombstones.len() as u64;
        let data_bytes: u64 = entries.iter().map(|e| e.encoded_size() as u64).sum::<u64>()
            + range_tombstones.iter().map(|e| e.encoded_size() as u64).sum::<u64>();
        // the file's key range covers both its point entries and the spans of
        // its range tombstones, so overlap-based file selection never misses
        // files whose range tombstones cover keys beyond their point entries
        let min_sort = entries
            .first()
            .map(|e| e.sort_key)
            .into_iter()
            .chain(range_tombstones.iter().map(|t| t.sort_key))
            .min()
            .unwrap_or(0);
        let max_sort = entries
            .last()
            .map(|e| e.sort_key)
            .into_iter()
            .chain(range_tombstones.iter().filter_map(|t| t.range_end().map(|e| e.saturating_sub(1))))
            .max()
            .unwrap_or(0);
        let min_delete = entries.iter().map(|e| e.delete_key).min().unwrap_or(0);
        let max_delete = entries.iter().map(|e| e.delete_key).max().unwrap_or(0);
        let max_seqnum = entries
            .iter()
            .map(|e| e.seqnum)
            .chain(range_tombstones.iter().map(|e| e.seqnum))
            .max()
            .unwrap_or(0);

        // Key weaving: chunk the S-sorted stream into tiles of h·B entries;
        // inside each tile order by D, cut pages of B entries, and let the
        // page itself re-sort its contents on S.
        // Until the table below takes ownership, a failed later write would
        // strand every page already on disk — keep them covered.
        let mut reservation = crate::reclaim::PageReservation::new(backend);
        let mut tiles = Vec::new();
        let mut tile_mins = Vec::new();
        let mut idx = 0usize;
        while idx < entries.len() {
            let end = (idx + entries_per_tile).min(entries.len());
            let mut tile_entries: Vec<Entry> = entries[idx..end].to_vec();
            let tile_min_sort = tile_entries.iter().map(|e| e.sort_key).min().unwrap_or(0);
            tile_entries.sort_by_key(|e| e.delete_key);
            let mut pages = Vec::new();
            for chunk in tile_entries.chunks(entries_per_page) {
                let page = Page::new(chunk.to_vec());
                let pid = backend.write_page(&page)?;
                reservation.add(pid);
                pages.push(PageHandle::from_page(pid, &page, config.bits_per_key));
            }
            tiles.push(DeleteTile::from_pages(pages));
            tile_mins.push(tile_min_sort);
            idx = end;
        }
        reservation.defuse();

        Ok(SsTable {
            meta: SsTableMeta {
                id,
                num_entries,
                num_point_tombstones,
                num_range_tombstones,
                data_bytes,
                min_sort,
                max_sort,
                min_delete,
                max_delete,
                created_at,
                oldest_tombstone_ts,
                max_seqnum,
            },
            tiles,
            tile_fences: FencePointers::new(tile_mins),
            range_tombstones,
            desc: std::sync::OnceLock::new(),
        })
    }

    /// Produces the durable description of this file for the manifest: page
    /// ids per tile (in layout order) plus the metadata that cannot be
    /// re-derived from page contents. Built once per (immutable) file and
    /// then shared, so repeated manifest commits cost an `Arc` clone.
    pub fn describe(&self) -> Arc<FileDesc> {
        Arc::clone(self.desc.get_or_init(|| {
            Arc::new(FileDesc {
                id: self.meta.id,
                created_at: self.meta.created_at,
                oldest_tombstone_ts: self.meta.oldest_tombstone_ts,
                max_seqnum: self.meta.max_seqnum,
                min_delete: self.meta.min_delete,
                max_delete: self.meta.max_delete,
                tiles: self
                    .tiles
                    .iter()
                    .map(|t| t.pages.iter().map(|p| p.id).collect())
                    .collect(),
                range_tombstones: self.range_tombstones.clone(),
            })
        }))
    }

    /// Rebuilds a file from its manifest description by reading its pages
    /// back from `backend`, re-deriving the Bloom filters, fence pointers,
    /// delete fences and min/max metadata that [`SsTable::describe`] left
    /// out. The inverse of `describe` up to those derived structures; the
    /// supplied descriptor is adopted as the rebuilt file's cached one, so
    /// post-recovery manifest commits recognise it by pointer identity.
    pub fn recover(
        desc: &Arc<FileDesc>,
        config: &LsmConfig,
        backend: &dyn StorageBackend,
    ) -> Result<SsTable> {
        let mut tiles = Vec::with_capacity(desc.tiles.len());
        let mut tile_mins = Vec::with_capacity(desc.tiles.len());
        let mut num_entries = desc.range_tombstones.len() as u64;
        let mut num_point_tombstones = 0u64;
        let mut data_bytes: u64 =
            desc.range_tombstones.iter().map(|e| e.encoded_size() as u64).sum();
        for tile_pages in &desc.tiles {
            let mut pages = Vec::with_capacity(tile_pages.len());
            for &pid in tile_pages {
                // recovery is the biggest bulk scan of all: re-deriving the
                // filters must not flush a shared cache's hot working set
                let page = backend.read_page_nofill(pid).map_err(|e| match e {
                    StorageError::PageNotFound(id) => StorageError::Corruption(format!(
                        "manifest references missing page {id} of file {}",
                        desc.id
                    )),
                    other => other,
                })?;
                let handle = PageHandle::from_page(pid, &page, config.bits_per_key);
                num_entries += handle.num_entries as u64;
                num_point_tombstones += handle.num_tombstones as u64;
                data_bytes += handle.data_bytes as u64;
                pages.push(handle);
            }
            let tile = DeleteTile::from_pages(pages);
            tile_mins.push(tile.min_sort);
            tiles.push(tile);
        }
        // the same min/max chaining as `build`: the file's range must cover
        // its range tombstones' spans, not just its point entries
        let min_sort = tiles
            .iter()
            .map(|t| t.min_sort)
            .chain(desc.range_tombstones.iter().map(|t| t.sort_key))
            .min()
            .unwrap_or(0);
        let max_sort = tiles
            .iter()
            .map(|t| t.max_sort)
            .chain(
                desc.range_tombstones
                    .iter()
                    .filter_map(|t| t.range_end().map(|e| e.saturating_sub(1))),
            )
            .max()
            .unwrap_or(0);
        // the delete-key bounds are recorded in the manifest (they are the
        // file-granularity KiWi fences secondary scans prune on). Adopt the
        // durable values — except for the conservative full-domain sentinel
        // a version-1 manifest decodes to, where the exact bounds are
        // re-derived from the pages just read (the in-memory fences are
        // then exact for this run; the durable descriptor keeps the
        // conservative bounds until the file is next rewritten)
        let derived_min =
            tiles.iter().flat_map(|t| t.pages.iter()).map(|p| p.min_delete).min().unwrap_or(0);
        let derived_max =
            tiles.iter().flat_map(|t| t.pages.iter()).map(|p| p.max_delete).max().unwrap_or(0);
        let v1_sentinel = desc.min_delete == 0 && desc.max_delete == DeleteKey::MAX;
        let (min_delete, max_delete) =
            if v1_sentinel { (derived_min, derived_max) } else { (desc.min_delete, desc.max_delete) };
        debug_assert!(
            v1_sentinel || (min_delete == derived_min && max_delete == derived_max),
            "manifest delete-key bounds disagree with page contents of file {}",
            desc.id
        );
        Ok(SsTable {
            meta: SsTableMeta {
                id: desc.id,
                num_entries,
                num_point_tombstones,
                num_range_tombstones: desc.range_tombstones.len() as u64,
                data_bytes,
                min_sort,
                max_sort,
                min_delete,
                max_delete,
                created_at: desc.created_at,
                oldest_tombstone_ts: desc.oldest_tombstone_ts,
                max_seqnum: desc.max_seqnum,
            },
            tiles,
            tile_fences: FencePointers::new(tile_mins),
            range_tombstones: desc.range_tombstones.clone(),
            desc: std::sync::OnceLock::from(Arc::clone(desc)),
        })
    }

    /// Number of tombstones (point + range) in the file.
    pub fn tombstone_count(&self) -> u64 {
        self.meta.num_point_tombstones + self.meta.num_range_tombstones
    }

    /// `true` if the file contains at least one tombstone.
    pub fn has_tombstones(&self) -> bool {
        self.tombstone_count() > 0
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> usize {
        self.tiles.iter().map(|t| t.pages.len()).sum()
    }

    /// Tombstone age `a_max` of the file at logical time `now`
    /// (0 for files without tombstones, per the paper).
    pub fn tombstone_age(&self, now: Timestamp) -> u64 {
        match self.meta.oldest_tombstone_ts {
            Some(ts) => now.saturating_sub(ts),
            None => 0,
        }
    }

    /// `true` if the file's sort-key range may contain `key`.
    pub fn key_in_range(&self, key: SortKey) -> bool {
        self.meta.num_entries > 0 && key >= self.meta.min_sort && key <= self.meta.max_sort
    }

    /// `true` if the file's sort-key range overlaps `[lo, hi)`.
    pub fn overlaps_sort_range(&self, lo: SortKey, hi: SortKey) -> bool {
        self.meta.num_entries > 0 && lo <= self.meta.max_sort && hi > self.meta.min_sort
    }

    /// `true` if the file's sort-key range overlaps the other file's range.
    pub fn overlaps_table(&self, other: &SsTable) -> bool {
        self.meta.min_sort <= other.meta.max_sort && other.meta.min_sort <= self.meta.max_sort
    }

    /// In-memory footprint of the file's navigation metadata in bytes
    /// (Bloom filters + fence pointers + delete fences).
    pub fn memory_footprint(&self) -> usize {
        let blooms: usize = self.tiles.iter().flat_map(|t| t.pages.iter()).map(|p| p.bloom.size_bytes()).sum();
        let delete_fences: usize = self.tiles.iter().map(|t| t.delete_fences.size_bytes()).sum();
        blooms + delete_fences + self.tile_fences.size_bytes()
    }

    /// The newest version of `key` stored in this file, if any. Consults the
    /// range-tombstone block; a covering range tombstone that is newer than
    /// the point entry is returned as a point tombstone.
    ///
    /// Bloom probes and page reads are charged to `stats`.
    pub fn get(
        &self,
        key: SortKey,
        backend: &dyn StorageBackend,
        stats: &IoStats,
    ) -> Result<Option<Entry>> {
        let mut found: Option<Entry> = None;
        if self.key_in_range(key) {
            if let Some(tile_idx) = self.tile_fences.locate(key) {
                let tile = &self.tiles[tile_idx];
                // probe the filter of every page in the tile (one hash each)
                stats.record_bloom_probes(tile.pages.len() as u64);
                for handle in &tile.pages {
                    if key < handle.min_sort || key > handle.max_sort {
                        continue;
                    }
                    if !handle.bloom.may_contain(key) {
                        continue;
                    }
                    let page = backend.read_page(handle.id)?;
                    if let Some(e) = page.get(key) {
                        found = Some(e.clone());
                        break;
                    }
                    // false positive: fall through to the next page of the tile
                }
            }
        }
        // range tombstones can shadow the point entry (or apply on their own)
        let covering = self
            .range_tombstones
            .iter()
            .filter(|t| t.covers(key))
            .max_by_key(|t| t.seqnum);
        match (found, covering) {
            (Some(e), Some(rt)) if rt.seqnum > e.seqnum => {
                Ok(Some(Entry::point_tombstone(key, rt.seqnum)))
            }
            (Some(e), _) => Ok(Some(e)),
            (None, Some(rt)) => Ok(Some(Entry::point_tombstone(key, rt.seqnum))),
            (None, None) => Ok(None),
        }
    }

    /// Every entry of the file whose sort key lies in `[lo, hi)`, including
    /// tombstones (the caller merges across files and applies them). All
    /// pages of every overlapping tile must be read because pages inside a
    /// tile are ordered on the delete key, not the sort key.
    pub fn range_scan(
        &self,
        lo: SortKey,
        hi: SortKey,
        backend: &dyn StorageBackend,
    ) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        if self.overlaps_sort_range(lo, hi) {
            if let Some((start, end)) = self.tile_fences.locate_range(lo, hi) {
                for tile in &self.tiles[start..=end.min(self.tiles.len() - 1)] {
                    if tile.max_sort < lo || tile.min_sort >= hi {
                        continue;
                    }
                    for handle in &tile.pages {
                        if handle.max_sort < lo || handle.min_sort >= hi {
                            continue;
                        }
                        let page = backend.read_page(handle.id)?;
                        out.extend(page.range(lo, hi).iter().cloned());
                    }
                }
            }
        }
        for rt in &self.range_tombstones {
            let end = rt.range_end().unwrap_or(rt.sort_key);
            if rt.sort_key < hi && end > lo {
                out.push(rt.clone());
            }
        }
        out.sort_by(|a, b| a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum)));
        Ok(out)
    }

    /// Reads every point entry of the file (used by compactions), sorted on
    /// the sort key. Range tombstones are available separately via
    /// [`SsTable::range_tombstones`]. A bulk scan: reads bypass block-cache
    /// fill so a merge streaming whole files cannot evict the hot read set.
    pub fn read_all_entries(&self, backend: &dyn StorageBackend) -> Result<Vec<Entry>> {
        let mut out = Vec::with_capacity(self.meta.num_entries as usize);
        for tile in &self.tiles {
            for handle in &tile.pages {
                let page = backend.read_page_nofill(handle.id)?;
                out.extend(page.entries().iter().cloned());
            }
        }
        out.sort_by(|a, b| a.sort_key.cmp(&b.sort_key).then_with(|| b.seqnum.cmp(&a.seqnum)));
        Ok(out)
    }

    /// Releases every page of the file (after the file was compacted away).
    /// Errors on already-missing pages are ignored.
    pub fn release_pages(&self, backend: &dyn StorageBackend) {
        crate::reclaim::retire_pages(
            backend,
            self.tiles.iter().flat_map(|tile| tile.pages.iter().map(|handle| handle.id)),
        );
    }

    /// Executes a secondary range delete: removes every non-tombstone entry
    /// whose **delete key** lies in `[d_lo, d_hi)`.
    ///
    /// Pages fully covered by the range qualify for a *full page drop*
    /// (released without being read); pages partially covered are read,
    /// filtered and rewritten. Returns the surviving file (or `None` if
    /// nothing survived), drop statistics, and the ids of the pages the
    /// delete made obsolete. The pages are **not** released here: the caller
    /// retires them through the version set so that concurrently pinned
    /// snapshots (which may still reference the original file) stay readable
    /// until they are dropped.
    pub fn secondary_range_delete(
        &self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
        config: &LsmConfig,
        backend: &dyn StorageBackend,
        now: Timestamp,
    ) -> Result<(Option<SsTable>, SecondaryDeleteStats, Vec<PageId>)> {
        let mut stats = SecondaryDeleteStats::default();
        let mut obsolete_pages: Vec<PageId> = Vec::new();
        let mut new_tiles: Vec<DeleteTile> = Vec::with_capacity(self.tiles.len());
        let mut tile_mins: Vec<SortKey> = Vec::with_capacity(self.tiles.len());
        // rewritten pages belong to nothing until the surviving file below
        // exists; a failed later read/write must not strand them on disk
        let mut reservation = crate::reclaim::PageReservation::new(backend);

        for tile in &self.tiles {
            let (full, partial) = tile.delete_fences.classify_range(d_lo, d_hi);
            let mut surviving: Vec<PageHandle> = Vec::with_capacity(tile.pages.len());
            for (idx, handle) in tile.pages.iter().enumerate() {
                if full.contains(&idx) {
                    // the whole page qualifies, unless it holds tombstones
                    // which must survive to keep primary-delete persistence
                    if handle.num_tombstones > 0 {
                        let page = backend.read_page_nofill(handle.id)?;
                        let (deleted, kept) = page.partition_by_delete_key(d_lo, d_hi);
                        stats.entries_deleted += deleted.len() as u64;
                        obsolete_pages.push(handle.id);
                        if kept.is_empty() {
                            stats.full_page_drops += 1;
                        } else {
                            stats.partial_page_drops += 1;
                            let new_page = Page::new(kept);
                            let pid = backend.write_page(&new_page)?;
                            reservation.add(pid);
                            surviving.push(PageHandle::from_page(pid, &new_page, config.bits_per_key));
                        }
                    } else {
                        stats.entries_deleted += handle.num_entries as u64;
                        stats.full_page_drops += 1;
                        obsolete_pages.push(handle.id);
                    }
                } else if partial.contains(&idx) {
                    // this page is rewritten (or dropped) right below, so do
                    // not let the read displace anything in the cache
                    let page = backend.read_page_nofill(handle.id)?;
                    let (deleted, kept) = page.partition_by_delete_key(d_lo, d_hi);
                    stats.entries_deleted += deleted.len() as u64;
                    if deleted.is_empty() {
                        // the fence over-approximated; nothing actually matched
                        stats.pages_untouched += 1;
                        surviving.push(handle.clone());
                    } else {
                        obsolete_pages.push(handle.id);
                        if kept.is_empty() {
                            stats.full_page_drops += 1;
                        } else {
                            stats.partial_page_drops += 1;
                            let new_page = Page::new(kept);
                            let pid = backend.write_page(&new_page)?;
                            reservation.add(pid);
                            surviving.push(PageHandle::from_page(pid, &new_page, config.bits_per_key));
                        }
                    }
                } else {
                    stats.pages_untouched += 1;
                    surviving.push(handle.clone());
                }
            }
            if !surviving.is_empty() {
                let tile = DeleteTile::from_pages(surviving);
                tile_mins.push(tile.min_sort);
                new_tiles.push(tile);
            }
        }

        if new_tiles.is_empty() && self.range_tombstones.is_empty() {
            reservation.defuse();
            return Ok((None, stats, obsolete_pages));
        }

        // recompute the metadata of the surviving file
        let num_entries: u64 = new_tiles.iter().map(|t| t.num_entries() as u64).sum::<u64>()
            + self.range_tombstones.len() as u64;
        let num_point_tombstones: u64 =
            new_tiles.iter().flat_map(|t| t.pages.iter()).map(|p| p.num_tombstones as u64).sum();
        let data_bytes: u64 = new_tiles
            .iter()
            .flat_map(|t| t.pages.iter())
            .map(|p| p.data_bytes as u64)
            .sum::<u64>()
            + self.range_tombstones.iter().map(|e| e.encoded_size() as u64).sum::<u64>();
        // the surviving key range must still cover the spans of the file's
        // range tombstones, otherwise lookups would skip this file and keys
        // shadowed by those tombstones would resurface from deeper levels
        let min_sort = new_tiles
            .iter()
            .map(|t| t.min_sort)
            .chain(self.range_tombstones.iter().map(|t| t.sort_key))
            .min()
            .unwrap_or(self.meta.min_sort);
        let max_sort = new_tiles
            .iter()
            .map(|t| t.max_sort)
            .chain(self.range_tombstones.iter().filter_map(|t| t.range_end().map(|e| e.saturating_sub(1))))
            .max()
            .unwrap_or(self.meta.max_sort);
        let min_delete =
            new_tiles.iter().flat_map(|t| t.pages.iter()).map(|p| p.min_delete).min().unwrap_or(0);
        let max_delete =
            new_tiles.iter().flat_map(|t| t.pages.iter()).map(|p| p.max_delete).max().unwrap_or(0);

        let table = SsTable {
            meta: SsTableMeta {
                id: self.meta.id,
                num_entries,
                num_point_tombstones,
                num_range_tombstones: self.meta.num_range_tombstones,
                data_bytes,
                min_sort,
                max_sort,
                min_delete,
                max_delete,
                created_at: now,
                oldest_tombstone_ts: if num_point_tombstones + self.meta.num_range_tombstones > 0 {
                    self.meta.oldest_tombstone_ts
                } else {
                    None
                },
                max_seqnum: self.meta.max_seqnum,
            },
            tiles: new_tiles,
            tile_fences: FencePointers::new(tile_mins),
            range_tombstones: self.range_tombstones.clone(),
            desc: std::sync::OnceLock::new(),
        };
        reservation.defuse();
        Ok((Some(table), stats, obsolete_pages))
    }

    /// Returns every live entry whose **delete key** lies in `[d_lo, d_hi)` —
    /// a secondary range *lookup* (paper §4.2.5). Only pages whose delete
    /// fences overlap the range are read.
    pub fn secondary_range_scan(
        &self,
        d_lo: DeleteKey,
        d_hi: DeleteKey,
        backend: &dyn StorageBackend,
    ) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        for tile in &self.tiles {
            for (idx, handle) in tile.pages.iter().enumerate() {
                if tile.delete_fences.coverage(idx, d_lo, d_hi)
                    == lethe_storage::PageCoverage::None
                {
                    continue;
                }
                let page = backend.read_page(handle.id)?;
                out.extend(
                    page.entries()
                        .iter()
                        .filter(|e| !e.is_tombstone() && e.delete_key >= d_lo && e.delete_key < d_hi)
                        .cloned(),
                );
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lethe_storage::InMemoryBackend;

    fn config(h: usize) -> LsmConfig {
        let mut c = LsmConfig::small_for_test();
        c.pages_per_delete_tile = h;
        c.max_pages_per_file = h * 8;
        c
    }

    /// entries with sort key k and delete key (k*37 % 1000) to decorrelate
    fn entries(n: u64) -> Vec<Entry> {
        (0..n).map(|k| Entry::put(k, (k * 37) % 1000, k + 1, Bytes::from(vec![b'v'; 16]))).collect()
    }

    fn build(h: usize, n: u64) -> (SsTable, std::sync::Arc<InMemoryBackend>) {
        let backend = InMemoryBackend::new_shared();
        let cfg = config(h);
        let t = SsTable::build(1, entries(n), vec![], 0, None, &cfg, backend.as_ref()).unwrap();
        (t, backend)
    }

    #[test]
    fn kiwi_layout_invariants() {
        let (t, backend) = build(4, 64);
        // tiles sorted on S and non-overlapping
        for w in t.tiles.windows(2) {
            assert!(w[0].max_sort < w[1].min_sort);
        }
        for tile in &t.tiles {
            // pages within a tile sorted on D
            for w in tile.pages.windows(2) {
                assert!(w[0].max_delete <= w[1].min_delete, "pages must be sorted on delete key");
            }
            // entries within a page sorted on S
            for p in &tile.pages {
                let page = backend.read_page(p.id).unwrap();
                let keys: Vec<u64> = page.entries().iter().map(|e| e.sort_key).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                assert_eq!(keys, sorted);
            }
        }
        assert_eq!(t.meta.num_entries, 64);
        assert_eq!(t.page_count(), 16);
        assert_eq!(t.tiles.len(), 4);
    }

    #[test]
    fn h_equal_one_is_classic_layout() {
        let (t, backend) = build(1, 32);
        assert_eq!(t.tiles.len(), t.page_count());
        // with one page per tile the file is globally sorted on S
        let mut all = Vec::new();
        for tile in &t.tiles {
            let page = backend.read_page(tile.pages[0].id).unwrap();
            all.extend(page.entries().iter().map(|e| e.sort_key));
        }
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(all, sorted);
    }

    #[test]
    fn get_finds_every_key_and_rejects_missing() {
        let (t, backend) = build(4, 100);
        let stats = IoStats::new_shared();
        for k in 0..100u64 {
            let e = t.get(k, backend.as_ref(), &stats).unwrap().unwrap();
            assert_eq!(e.sort_key, k);
            assert_eq!(e.delete_key, (k * 37) % 1000);
        }
        assert!(t.get(5000, backend.as_ref(), &stats).unwrap().is_none());
        // probing costs were charged
        assert!(stats.snapshot().bloom_probes > 0);
    }

    #[test]
    fn get_respects_range_tombstone_block() {
        let backend = InMemoryBackend::new_shared();
        let cfg = config(2);
        let rt = Entry::range_tombstone(10, 20, 1000);
        let t = SsTable::build(1, entries(30), vec![rt], 0, Some(5), &cfg, backend.as_ref()).unwrap();
        let stats = IoStats::new_shared();
        // key 15 was written with seqnum 16 < 1000 → shadowed by the range tombstone
        let e = t.get(15, backend.as_ref(), &stats).unwrap().unwrap();
        assert!(e.is_tombstone());
        // key 25 unaffected
        assert!(!t.get(25, backend.as_ref(), &stats).unwrap().unwrap().is_tombstone());
        // key 12 never written but covered → reported as tombstone
        assert_eq!(t.meta.num_range_tombstones, 1);
        assert!(t.has_tombstones());
        assert_eq!(t.tombstone_age(105), 100);
    }

    #[test]
    fn range_scan_returns_sorted_slice() {
        let (t, backend) = build(4, 200);
        let got = t.range_scan(50, 70, backend.as_ref()).unwrap();
        let keys: Vec<u64> = got.iter().map(|e| e.sort_key).collect();
        assert_eq!(keys, (50..70).collect::<Vec<u64>>());
        assert!(t.range_scan(1000, 2000, backend.as_ref()).unwrap().is_empty());
    }

    #[test]
    fn read_all_entries_roundtrips() {
        let (t, backend) = build(8, 128);
        let all = t.read_all_entries(backend.as_ref()).unwrap();
        assert_eq!(all.len(), 128);
        assert!(all.windows(2).all(|w| w[0].sort_key <= w[1].sort_key));
    }

    #[test]
    fn secondary_range_delete_uses_full_drops_on_uncorrelated_data() {
        // delete keys uniformly cover [0, 1000); delete 40% of that domain
        let (t, backend) = build(8, 512);
        let before_reads = backend.stats().snapshot().pages_read;
        let (survivor, stats, obsolete) =
            t.secondary_range_delete(0, 400, &config(8), backend.as_ref(), 1).unwrap();
        let survivor = survivor.expect("not everything deleted");
        // page drops are deferred: the caller releases the obsolete pages
        assert_eq!(obsolete.len() as u64, stats.full_page_drops + stats.partial_page_drops);
        for id in &obsolete {
            backend.drop_page(*id).unwrap();
        }
        assert!(stats.full_page_drops > 0, "expected some full page drops: {stats:?}");
        assert!(stats.entries_deleted > 150);
        // full drops do not read pages; only partial drops do
        let reads = backend.stats().snapshot().pages_read - before_reads;
        assert_eq!(reads, stats.partial_page_drops, "only partial drops should read pages");
        // surviving file has no entry with delete key in [0, 400)
        let remaining = survivor.read_all_entries(backend.as_ref()).unwrap();
        assert!(remaining.iter().all(|e| e.delete_key >= 400));
        assert_eq!(
            remaining.len() as u64 + stats.entries_deleted,
            512,
            "deleted + kept must cover all entries"
        );
    }

    #[test]
    fn secondary_range_delete_everything_returns_none() {
        let (t, backend) = build(4, 64);
        let (survivor, stats, obsolete) =
            t.secondary_range_delete(0, u64::MAX, &config(4), backend.as_ref(), 1).unwrap();
        assert!(survivor.is_none());
        assert_eq!(stats.entries_deleted, 64);
        for id in obsolete {
            backend.drop_page(id).unwrap();
        }
        assert_eq!(backend.live_pages(), 0);
    }

    #[test]
    fn secondary_range_delete_preserves_tombstones() {
        let backend = InMemoryBackend::new_shared();
        let cfg = config(2);
        let mut es = entries(16);
        es.push(Entry::point_tombstone(100, 200));
        es.sort_by_key(|e| e.sort_key);
        let t = SsTable::build(1, es, vec![], 0, Some(3), &cfg, backend.as_ref()).unwrap();
        let (survivor, _, _) =
            t.secondary_range_delete(0, u64::MAX, &cfg, backend.as_ref(), 1).unwrap();
        let survivor = survivor.expect("tombstone must survive");
        assert_eq!(survivor.meta.num_point_tombstones, 1);
        let all = survivor.read_all_entries(backend.as_ref()).unwrap();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_point_tombstone());
    }

    #[test]
    fn secondary_range_scan_filters_by_delete_key() {
        let (t, backend) = build(4, 200);
        let hits = t.secondary_range_scan(100, 200, backend.as_ref()).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|e| e.delete_key >= 100 && e.delete_key < 200));
        // every qualifying key is found
        let expected = (0..200u64).filter(|k| (k * 37) % 1000 >= 100 && (k * 37) % 1000 < 200).count();
        assert_eq!(hits.len(), expected);
    }

    #[test]
    fn overlap_and_range_predicates() {
        let (t, _) = build(2, 50);
        assert!(t.key_in_range(0));
        assert!(t.key_in_range(49));
        assert!(!t.key_in_range(50));
        assert!(t.overlaps_sort_range(40, 60));
        assert!(!t.overlaps_sort_range(50, 60));
        assert!(t.overlaps_sort_range(0, 1));
    }

    #[test]
    fn memory_footprint_grows_with_h_metadata() {
        let (t1, _) = build(1, 256);
        let (t8, _) = build(8, 256);
        // per-tile fence pointers shrink as h grows, delete fences stay per page
        assert!(t1.memory_footprint() > 0);
        assert!(t8.memory_footprint() > 0);
        assert!(t8.tile_fences.len() < t1.tile_fences.len());
    }

    #[test]
    fn describe_recover_roundtrip_rebuilds_identical_file() {
        let backend = InMemoryBackend::new_shared();
        let cfg = config(4);
        let mut es = entries(100);
        es.push(Entry::point_tombstone(200, 300));
        es.sort_by_key(|e| e.sort_key);
        let rt = Entry::range_tombstone(500, 520, 400);
        let t = SsTable::build(7, es, vec![rt], 42, Some(5), &cfg, backend.as_ref()).unwrap();

        let desc = t.describe();
        let back = SsTable::recover(&desc, &cfg, backend.as_ref()).unwrap();

        // metadata is fully reconstructed
        assert_eq!(back.meta.id, t.meta.id);
        assert_eq!(back.meta.num_entries, t.meta.num_entries);
        assert_eq!(back.meta.num_point_tombstones, t.meta.num_point_tombstones);
        assert_eq!(back.meta.num_range_tombstones, t.meta.num_range_tombstones);
        assert_eq!(back.meta.data_bytes, t.meta.data_bytes);
        assert_eq!(back.meta.min_sort, t.meta.min_sort);
        assert_eq!(back.meta.max_sort, t.meta.max_sort);
        assert_eq!(back.meta.min_delete, t.meta.min_delete);
        assert_eq!(back.meta.max_delete, t.meta.max_delete);
        assert_eq!(back.meta.created_at, t.meta.created_at);
        assert_eq!(back.meta.oldest_tombstone_ts, t.meta.oldest_tombstone_ts);
        assert_eq!(back.meta.max_seqnum, t.meta.max_seqnum);
        assert_eq!(back.range_tombstones, t.range_tombstones);
        // the KiWi layout is preserved page for page
        assert_eq!(back.tiles.len(), t.tiles.len());
        for (a, b) in back.tiles.iter().zip(t.tiles.iter()) {
            let ids_a: Vec<_> = a.pages.iter().map(|p| p.id).collect();
            let ids_b: Vec<_> = b.pages.iter().map(|p| p.id).collect();
            assert_eq!(ids_a, ids_b);
        }
        // and the rebuilt file answers lookups identically
        let stats = IoStats::new_shared();
        for k in (0..100u64).chain([200, 505, 519, 9999]) {
            let a = t.get(k, backend.as_ref(), &stats).unwrap();
            let b = back.get(k, backend.as_ref(), &stats).unwrap();
            assert_eq!(a, b, "key {k}");
        }
        assert_eq!(
            back.read_all_entries(backend.as_ref()).unwrap(),
            t.read_all_entries(backend.as_ref()).unwrap()
        );
    }

    #[test]
    fn recover_with_missing_page_is_corruption() {
        let (t, backend) = build(2, 32);
        let desc = t.describe();
        t.release_pages(backend.as_ref());
        let err = SsTable::recover(&desc, &config(2), backend.as_ref()).unwrap_err();
        assert!(matches!(err, lethe_storage::StorageError::Corruption(_)));
    }

    #[test]
    fn release_pages_frees_device() {
        let (t, backend) = build(2, 32);
        assert!(backend.live_pages() > 0);
        t.release_pages(backend.as_ref());
        assert_eq!(backend.live_pages(), 0);
    }
}
