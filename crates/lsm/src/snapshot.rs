//! Live-snapshot tracking: the registry that lets long-lived point-in-time
//! readers coexist with FADE's delete-persistence compactions and the
//! deferred page reclamation of the version layer.
//!
//! A [`SnapshotTracker`] records the seqnum fence of every live snapshot
//! handle. Two engine mechanisms consult it:
//!
//! * **Tombstone GC gating** — a compaction may only drop persistent
//!   tombstones if no live snapshot could still observe the deleted data,
//!   i.e. if the oldest live snapshot seqnum is at or above the compaction's
//!   view of the data. While a snapshot pins old history, FADE's `D_th`
//!   guarantee is deliberately suspended (and counted, so the
//!   delete-persistence accounting never claims a tombstone persisted while
//!   it was still snapshot-visible).
//! * **Page reclamation** — pinned `Arc<Version>`s already defer reclamation
//!   structurally; the tracker adds the *watermark* side: once a snapshot is
//!   forcibly expired, `lowest_freed` rises and any stale handle at or below
//!   it fails closed instead of touching reclaimed pages.
//!
//! The seqnum map itself is a ranked mutex locked only on snapshot
//! register/release/expire — never on read or compaction hot paths. The
//! values hot paths need (`has_live`, `oldest_live`, `lowest_freed`) are
//! mirrored into atomics under that mutex, so GC-gating checks inside
//! compaction planning are plain atomic loads with no lock-rank footprint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use lethe_storage::SeqNum;
use lethe_sync::{LockRank, Mutex};

/// Sentinel meaning "no live snapshot" in the `oldest_live` mirror.
const NO_LIVE: u64 = u64::MAX;

/// Registry of live snapshot seqnums plus the lowest-freed watermark.
///
/// Shared store-wide (one tracker per store, injected into every shard's
/// tree), because a cross-shard snapshot is one fence seqnum pinned in all
/// shards at once.
#[derive(Debug)]
pub struct SnapshotTracker {
    /// Refcounted live seqnums: several handles may share one fence.
    live: Mutex<BTreeMap<SeqNum, usize>>,
    /// Atomic mirror of the smallest key in `live`, or [`NO_LIVE`].
    oldest_live: AtomicU64,
    /// Atomic mirror of the number of live registrations.
    live_count: AtomicU64,
    /// Highest seqnum whose pinned state may have been reclaimed: handles at
    /// or below this fence must error instead of reading.
    lowest_freed: AtomicU64,
}

impl Default for SnapshotTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotTracker {
    /// Creates an empty tracker (no live snapshots, watermark at zero).
    pub fn new() -> Self {
        SnapshotTracker {
            live: Mutex::new(LockRank::SnapshotTracker, BTreeMap::new()),
            oldest_live: AtomicU64::new(NO_LIVE),
            live_count: AtomicU64::new(0),
            lowest_freed: AtomicU64::new(0),
        }
    }

    /// Registers a live snapshot at `seq`. Counted: each `register` must be
    /// paired with exactly one [`release`](Self::release).
    pub fn register(&self, seq: SeqNum) {
        let mut live = self.live.lock();
        *live.entry(seq).or_insert(0) += 1;
        self.refresh_mirrors(&live);
    }

    /// Releases one registration at `seq`. Unmatched releases are ignored
    /// (the map is authoritative; a double-release cannot underflow it).
    pub fn release(&self, seq: SeqNum) {
        let mut live = self.live.lock();
        if let Some(count) = live.get_mut(&seq) {
            *count -= 1;
            if *count == 0 {
                live.remove(&seq);
            }
        }
        self.refresh_mirrors(&live);
    }

    /// The oldest live snapshot seqnum, if any. Lock-free.
    pub fn oldest_live(&self) -> Option<SeqNum> {
        match self.oldest_live.load(Ordering::Acquire) {
            NO_LIVE => None,
            seq => Some(seq),
        }
    }

    /// Whether any snapshot is live. Lock-free.
    pub fn has_live(&self) -> bool {
        self.live_count.load(Ordering::Acquire) != 0
    }

    /// True if a compaction whose inputs were written before `fence` may
    /// drop persistent tombstones: no live snapshot is older than the fence,
    /// so nobody can still observe the data those tombstones shadow.
    /// Lock-free; safe to call from compaction planning under version locks.
    pub fn may_drop_tombstones(&self, fence: SeqNum) -> bool {
        match self.oldest_live.load(Ordering::Acquire) {
            NO_LIVE => true,
            oldest => oldest >= fence,
        }
    }

    /// Raises the lowest-freed watermark to at least `seq`: every handle at
    /// or below it is now invalid. Monotonic.
    pub fn set_lowest_freed(&self, seq: SeqNum) {
        self.lowest_freed.fetch_max(seq, Ordering::AcqRel);
    }

    /// The current lowest-freed watermark. Lock-free.
    pub fn lowest_freed(&self) -> SeqNum {
        self.lowest_freed.load(Ordering::Acquire)
    }

    /// Whether a handle at `seq` may still read: its pinned state has not
    /// been freed out from under it.
    pub fn is_valid(&self, seq: SeqNum) -> bool {
        seq > self.lowest_freed.load(Ordering::Acquire)
    }

    /// Re-derives the atomic mirrors from the authoritative map. Called
    /// under the map lock so mirror updates are totally ordered.
    fn refresh_mirrors(&self, live: &BTreeMap<SeqNum, usize>) {
        let oldest = live.keys().next().copied().unwrap_or(NO_LIVE);
        let count = live.values().map(|&c| c as u64).sum();
        self.oldest_live.store(oldest, Ordering::Release);
        self.live_count.store(count, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_release_tracks_oldest() {
        let t = SnapshotTracker::new();
        assert!(!t.has_live());
        assert_eq!(t.oldest_live(), None);
        assert!(t.may_drop_tombstones(1_000_000));

        t.register(50);
        t.register(10);
        t.register(90);
        assert!(t.has_live());
        assert_eq!(t.oldest_live(), Some(10));
        assert!(!t.may_drop_tombstones(11));
        assert!(t.may_drop_tombstones(10));

        t.release(10);
        assert_eq!(t.oldest_live(), Some(50));
        t.release(90);
        t.release(50);
        assert!(!t.has_live());
        assert_eq!(t.oldest_live(), None);
    }

    #[test]
    fn registrations_are_refcounted() {
        let t = SnapshotTracker::new();
        t.register(7);
        t.register(7);
        t.release(7);
        assert_eq!(t.oldest_live(), Some(7));
        t.release(7);
        assert_eq!(t.oldest_live(), None);
        // unmatched release must not underflow or re-create the entry
        t.release(7);
        assert_eq!(t.oldest_live(), None);
        assert!(!t.has_live());
    }

    #[test]
    fn lowest_freed_watermark_is_monotonic() {
        let t = SnapshotTracker::new();
        assert_eq!(t.lowest_freed(), 0);
        assert!(t.is_valid(1));
        t.set_lowest_freed(40);
        assert!(!t.is_valid(40));
        assert!(t.is_valid(41));
        t.set_lowest_freed(20); // must not regress
        assert_eq!(t.lowest_freed(), 40);
        t.set_lowest_freed(60);
        assert!(!t.is_valid(60));
        assert!(t.is_valid(61));
    }

    #[test]
    fn gating_uses_oldest_not_count() {
        let t = SnapshotTracker::new();
        t.register(100);
        t.register(5);
        // a compaction at fence 50 is blocked by the snapshot at 5 ...
        assert!(!t.may_drop_tombstones(50));
        t.release(5);
        // ... and unblocked the moment the old snapshot releases, even
        // though a newer one is still live.
        assert!(t.may_drop_tombstones(50));
        assert!(t.has_live());
    }
}
