//! Immutable version sets: snapshot-isolated views of the on-device tree.
//!
//! The tree's disk levels are published as an immutable [`Version`] behind an
//! `Arc`. Readers *pin* the current version (one `Arc` clone under a brief
//! read lock) and then walk levels, runs and files without any further
//! synchronisation — a concurrently running flush or compaction builds a new
//! `Vec<Level>` (structure copied, files shared by `Arc`) and *installs* it
//! with a single pointer swap. A reader therefore always observes either the
//! complete pre-compaction tree or the complete post-compaction tree, never a
//! half-committed mixture.
//!
//! ## Deferred page reclamation
//!
//! Under the old inline design a compaction dropped its input pages the
//! moment the merge finished. With pinned snapshots that would be a
//! use-after-free: a reader holding the previous version could still need
//! those pages. Two mechanisms work together instead:
//!
//! * Obsolete files are *retired* into a garbage list when the version that
//!   removed them is installed; a retired file is only processed once the
//!   garbage list holds its last strong reference (no installed version or
//!   pinned snapshot can reach it any more).
//! * Device pages are **reference-counted across file generations**. A
//!   secondary range delete replaces a file with a new `SsTable` object that
//!   *shares* the surviving pages with the original, so the same page can be
//!   reachable from several table objects across versions. Every table
//!   increments its pages' counts when it enters the version set
//!   ([`VersionSet::register_table`]) and decrements them when its garbage
//!   entry is processed; a page is dropped exactly when its count reaches
//!   zero.

use crate::level::Level;
use crate::reclaim;
use crate::sstable::SsTable;
use lethe_storage::{PageId, SortKey, StorageBackend};
use lethe_sync::{LockRank, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable snapshot of the tree's disk levels.
///
/// `levels[0]` is the first disk level ("Level 1" of the paper). The
/// structure is never mutated after installation; files are shared with
/// other versions through `Arc<SsTable>`.
#[derive(Debug, Default)]
pub struct Version {
    /// Disk levels of this snapshot.
    pub levels: Vec<Level>,
}

impl Version {
    /// An empty tree.
    pub fn empty() -> Self {
        Version::default()
    }

    /// Index of the deepest level that currently holds data, if any.
    pub fn deepest_nonempty_level(&self) -> Option<usize> {
        (0..self.levels.len()).rev().find(|&i| !self.levels[i].is_empty())
    }

    /// Number of runs in the first disk level (the write-backpressure
    /// signal: flushed-but-not-yet-compacted buffers pile up here).
    pub fn l0_run_count(&self) -> usize {
        self.levels.first().map(|l| l.run_count()).unwrap_or(0)
    }

    /// Every file whose sort-key range overlaps `[lo, hi)`, in read
    /// precedence order (shallowest level first, newest run first). The
    /// source order a range scan's merge requires: when two files hold the
    /// same `(key, seqnum)` — a flush racing its own install — the earlier
    /// (newer) source must win.
    pub fn overlapping_tables(&self, lo: SortKey, hi: SortKey) -> Vec<Arc<SsTable>> {
        let mut out = Vec::new();
        for level in &self.levels {
            for run in &level.runs {
                for table in run.tables() {
                    if table.overlaps_sort_range(lo, hi) {
                        out.push(Arc::clone(table));
                    }
                }
            }
        }
        out
    }
}

/// The shared, swappable pointer to the current [`Version`] plus the garbage
/// list of retired files and the cross-generation page reference counts.
#[derive(Debug)]
pub struct VersionSet {
    current: RwLock<Arc<Version>>,
    garbage: Mutex<Vec<Arc<SsTable>>>,
    /// How many *table objects* (across all versions, pinned snapshots and
    /// the garbage list) reference each live page. Maintained by
    /// [`VersionSet::register_table`] / garbage collection.
    page_refs: Mutex<HashMap<PageId, u32>>,
    installs: AtomicU64,
}

impl Default for VersionSet {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionSet {
    /// Creates a version set holding an empty tree.
    pub fn new() -> Self {
        VersionSet {
            current: RwLock::new(LockRank::VersionCurrent, Arc::new(Version::empty())),
            garbage: Mutex::new(LockRank::VersionGarbage, Vec::new()),
            page_refs: Mutex::new(LockRank::PageRefs, HashMap::new()),
            installs: AtomicU64::new(0),
        }
    }

    /// Pins the current version: the returned snapshot stays fully readable
    /// (including its device pages) until dropped, regardless of concurrent
    /// flushes and compactions.
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current.read())
    }

    /// Atomically publishes `levels` as the new current version. Readers
    /// pinning concurrently observe either the old or the new version in its
    /// entirety.
    pub fn install(&self, levels: Vec<Level>) {
        let next = Arc::new(Version { levels });
        *self.current.write() = next;
        self.installs.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of versions installed so far (diagnostic).
    pub fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }

    /// Accounts for a table entering the version set (a freshly built or
    /// recovered file, or a secondary-delete replacement that shares pages
    /// with the file it replaces): each of its pages gains one reference.
    /// Must be called exactly once per table object before the version
    /// containing it is installed.
    pub fn register_table(&self, table: &SsTable) {
        let mut refs = self.page_refs.lock();
        for tile in &table.tiles {
            for handle in &tile.pages {
                *refs.entry(handle.id).or_insert(0) += 1;
            }
        }
    }

    /// Retires a table object that the just-installed version no longer
    /// references. Its pages' reference counts are released — and the pages
    /// dropped when unshared — once no installed version or pinned snapshot
    /// holds the table any more.
    pub fn retire_table(&self, table: Arc<SsTable>) {
        self.garbage.lock().push(table);
    }

    /// Processes every retired table that no installed version or pinned
    /// snapshot references any more: each of its pages loses one reference,
    /// and pages reaching zero are released on the device. Returns how many
    /// garbage entries were processed. Errors from already-missing pages are
    /// ignored (reclamation is idempotent across recovery).
    pub fn collect_garbage(&self, backend: &dyn StorageBackend) -> usize {
        let mut garbage = self.garbage.lock();
        let mut refs = self.page_refs.lock();
        let mut reclaimed = 0;
        garbage.retain(|table| {
            // strong_count == 1 ⇒ the garbage list holds the only reference:
            // the file is in no version, and no reader pins a version that
            // contains it. Nobody can clone the Arc back up from here (the
            // list is behind this mutex), so the check cannot race.
            if Arc::strong_count(table) == 1 {
                for tile in &table.tiles {
                    for handle in &tile.pages {
                        match refs.get_mut(&handle.id) {
                            Some(n) if *n > 1 => *n -= 1,
                            _ => {
                                refs.remove(&handle.id);
                                reclaim::retire_page(backend, handle.id);
                            }
                        }
                    }
                }
                reclaimed += 1;
                false
            } else {
                true
            }
        });
        reclaimed
    }

    /// Number of retired files still awaiting reclamation (diagnostic).
    pub fn garbage_len(&self) -> usize {
        self.garbage.lock().len()
    }

    /// Releases the pages of a table that never entered the version set
    /// (a job output whose commit failed, or a stale plan's output),
    /// skipping pages shared with *registered* tables — a secondary-delete
    /// replacement shares its surviving pages with the still-installed
    /// original, and those must survive the abort.
    pub fn release_unregistered_pages(&self, table: &SsTable, backend: &dyn StorageBackend) {
        let refs = self.page_refs.lock();
        for tile in &table.tiles {
            for handle in &tile.pages {
                if !refs.contains_key(&handle.id) {
                    reclaim::retire_page(backend, handle.id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsmConfig;
    use crate::level::Run;
    use bytes::Bytes;
    use lethe_storage::{Entry, InMemoryBackend};

    fn table(id: u64, backend: &InMemoryBackend) -> Arc<SsTable> {
        let cfg = LsmConfig::small_for_test();
        let entries: Vec<Entry> =
            (0..8u64).map(|k| Entry::put(k, k, k + 1, Bytes::from_static(b"v"))).collect();
        Arc::new(SsTable::build(id, entries, vec![], 0, None, &cfg, backend).unwrap())
    }

    fn page_ids(t: &SsTable) -> Vec<u64> {
        t.tiles.iter().flat_map(|tile| tile.pages.iter().map(|p| p.id)).collect()
    }

    #[test]
    fn install_swaps_atomically_and_old_pin_stays_readable() {
        let backend = InMemoryBackend::new_shared();
        let vs = VersionSet::new();
        let t1 = table(1, &backend);
        vs.register_table(&t1);
        let mut l0 = Level::new();
        l0.runs.push(Run::new(vec![Arc::clone(&t1)]));
        vs.install(vec![l0]);
        assert_eq!(vs.installs(), 1);

        let pinned = vs.current();
        assert_eq!(pinned.levels[0].file_count(), 1);

        // a "compaction" replaces the file with a new one
        let t2 = table(2, &backend);
        vs.register_table(&t2);
        let mut l0 = Level::new();
        l0.runs.push(Run::new(vec![Arc::clone(&t2)]));
        vs.install(vec![l0]);
        vs.retire_table(Arc::clone(&t1));
        drop(t1);

        // the pin still references the retired file: nothing is reclaimed
        assert_eq!(vs.collect_garbage(backend.as_ref()), 0);
        assert_eq!(pinned.levels[0].runs[0].tables()[0].meta.id, 1);
        // every page of the pinned file is still readable
        for id in page_ids(&pinned.levels[0].runs[0].tables()[0]) {
            backend.read_page(id).unwrap();
        }

        // releasing the pin makes the file reclaimable
        drop(pinned);
        assert_eq!(vs.collect_garbage(backend.as_ref()), 1);
        assert_eq!(vs.garbage_len(), 0);
        // the new version's file is untouched
        let now = vs.current();
        assert_eq!(now.levels[0].runs[0].tables()[0].meta.id, 2);
    }

    /// Regression test for the page-sharing hazard the concurrency stress
    /// test caught: a secondary-delete replacement shares surviving pages
    /// with the file it replaces. Retiring either generation must never
    /// drop a page the other generation (or a pinned snapshot holding it)
    /// can still reach.
    #[test]
    fn shared_pages_across_file_generations_are_refcounted() {
        let backend = InMemoryBackend::new_shared();
        let cfg = LsmConfig::small_for_test();
        let vs = VersionSet::new();
        let original = table(1, &backend);
        vs.register_table(&original);
        let mut l0 = Level::new();
        l0.runs.push(Run::new(vec![Arc::clone(&original)]));
        vs.install(vec![l0]);

        // replacement shares the surviving pages with the original
        let (replacement, _, obsolete) = original
            .secondary_range_delete(0, 3, &cfg, backend.as_ref(), 1)
            .unwrap();
        let replacement = Arc::new(replacement.expect("some keys survive"));
        vs.register_table(&replacement);
        let shared: Vec<u64> =
            page_ids(&replacement).into_iter().filter(|id| page_ids(&original).contains(id)).collect();
        assert!(!shared.is_empty(), "the delete must leave shared pages for this test");
        let mut l0 = Level::new();
        l0.runs.push(Run::new(vec![Arc::clone(&replacement)]));
        vs.install(vec![l0]);
        vs.retire_table(Arc::clone(&original));
        drop(original);

        // the original is unpinned: its exclusive (obsolete) pages go, the
        // shared ones survive because the replacement still references them
        assert_eq!(vs.collect_garbage(backend.as_ref()), 1);
        for id in &obsolete {
            assert!(backend.read_page(*id).is_err(), "obsolete page {id} must be dropped");
        }
        for id in &shared {
            backend.read_page(*id).expect("shared page dropped while still referenced");
        }

        // retiring the replacement finally releases the shared pages
        vs.install(vec![]);
        vs.retire_table(Arc::clone(&replacement));
        drop(replacement);
        assert_eq!(vs.collect_garbage(backend.as_ref()), 1);
        for id in &shared {
            assert!(backend.read_page(*id).is_err(), "shared page {id} leaked");
        }
        assert_eq!(backend.live_pages(), 0, "no pages may leak");
    }

    #[test]
    fn empty_version_helpers() {
        let v = Version::empty();
        assert!(v.deepest_nonempty_level().is_none());
        assert_eq!(v.l0_run_count(), 0);
        let vs = VersionSet::default();
        assert_eq!(vs.current().levels.len(), 0);
        assert_eq!(vs.garbage_len(), 0);
    }
}
