// must-fail: panic paths in storage/lsm non-test code
fn decode(buf: &[u8]) -> u64 {
    let header: [u8; 8] = buf[..8].try_into().unwrap();
    u64::from_le_bytes(header)
}

fn lookup(map: &std::collections::BTreeMap<u64, u64>, k: u64) -> u64 {
    *map.get(&k).expect("key must exist")
}

fn unsupported() {
    unimplemented!("later")
}
