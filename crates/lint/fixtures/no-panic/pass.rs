// must-pass: error returns, the unwrap_or family, justified markers, and
// test code
fn decode(buf: &[u8]) -> Result<u64> {
    let header: [u8; 8] =
        buf.get(..8).ok_or(StorageError::Corruption)?.try_into().map_err(|_| bad())?;
    Ok(u64::from_le_bytes(header))
}

fn fallback(v: Option<u64>) -> u64 {
    v.unwrap_or_default().max(v.unwrap_or(7)).max(v.unwrap_or_else(|| 9))
}

fn justified(v: Option<u64>) -> u64 {
    // lint:allow(no-panic): the slice is length-checked two lines above
    v.expect("checked above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_freely() {
        assert_eq!(Some(1).unwrap(), 1);
        panic!("test code may panic");
    }
}
