// must-pass: retirement goes through the choke point; a commented call,
// a call in test code, and an allow-marked call are all fine
fn release(backend: &dyn StorageBackend, id: PageId) {
    crate::reclaim::retire_page(backend, id);
    // backend.drop_page(id) would bypass cache invalidation
}

fn checked(backend: &dyn StorageBackend, id: PageId) {
    // lint:allow(raw-drop-page): fixture demonstrating a justified bypass
    let _ = backend.drop_page(id);
}

#[cfg(test)]
mod tests {
    #[test]
    fn drops_directly() {
        let b = InMemoryBackend::new();
        b.drop_page(id).unwrap();
    }
}
