// must-fail: raw drop_page call outside the retirement choke point
fn release(backend: &dyn StorageBackend, id: PageId) {
    let _ = backend.drop_page(id);
}
