//! Correctly ordered durability protocols the `durability-order`
//! analysis must accept. Never compiled — parsed by the lint's tests.
//! Expected: zero `durability-order` findings.

use std::path::Path;

type Result<T> = std::io::Result<T>;

pub struct Wal;
pub struct Manifest;
pub struct FailPoint;

pub struct Store {
    wal: Wal,
    manifest: Manifest,
    failpoint: FailPoint,
}

impl Store {
    /// Barriers established inside an unconditional scope block still
    /// dominate the publish that follows it.
    pub fn rewrite_publish(&self, tmp: &Path, dst: &Path, dir: &Path, data: &[u8]) -> Result<()> {
        {
            let mut file = open_file(tmp)?;
            file.write_all(data)?;
            barrier::sync_all_counted(&file)?;
        }
        std::fs::rename(tmp, dst)?;
        barrier::fsync_dir_counted(dir)?;
        Ok(())
    }

    /// `let … = { … }` expression blocks propagate dominators the same
    /// way a bare scope block does.
    pub fn publish_via_expr_block(&self, tmp: &Path, dst: &Path, dir: &Path, data: &[u8]) -> Result<()> {
        let written = {
            let mut file = open_file(tmp)?;
            file.write_all(data)?;
            barrier::sync_data_counted(&file)?;
            data.len()
        };
        let _ = written;
        std::fs::rename(tmp, dst)?;
        barrier::fsync_dir_counted(dir)?;
        Ok(())
    }

    /// An unconditional manifest commit dominates a truncation that only
    /// happens on one branch: dominators flow *into* branches.
    pub fn commit_then_truncate(&mut self, upto: u64, version: u32, have_wal: bool) -> Result<()> {
        self.manifest.commit_version(version)?;
        if have_wal {
            self.wal.truncate_prefix(upto)?;
        }
        Ok(())
    }

    /// A kill point sitting right next to the durable operation it
    /// guards — frame construction in between is within the adjacency
    /// window.
    pub fn guarded_append(&self, file: &std::fs::File, record: &[u8]) -> Result<()> {
        self.failpoint.check("fixture.append")?;
        let mut framed = Vec::with_capacity(record.len() + 8);
        framed.extend_from_slice(&(record.len() as u64).to_le_bytes());
        framed.extend_from_slice(record);
        write_frame(file, &framed)?;
        file.write_all(&framed)?;
        Ok(())
    }
}

fn open_file(path: &Path) -> Result<std::fs::File> {
    std::fs::File::open(path)
}

fn write_frame(_file: &std::fs::File, _framed: &[u8]) -> Result<()> {
    Ok(())
}

mod barrier {
    pub fn sync_all_counted(_file: &std::fs::File) -> std::io::Result<()> {
        Ok(())
    }

    pub fn sync_data_counted(_file: &std::fs::File) -> std::io::Result<()> {
        Ok(())
    }

    pub fn fsync_dir_counted(_dir: &std::path::Path) -> std::io::Result<()> {
        Ok(())
    }
}
