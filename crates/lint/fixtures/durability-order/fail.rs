//! Seeded durability-protocol ordering violations. Never compiled —
//! parsed by the `durability-order` analysis in the lint's tests.
//! Expected: exactly five `durability-order` findings.

use std::path::Path;

type Result<T> = std::io::Result<T>;

pub struct Wal;
pub struct Manifest;
pub struct FailPoint;

pub struct Store {
    wal: Wal,
    manifest: Manifest,
    failpoint: FailPoint,
}

impl Store {
    /// Violation 1 — publish before the content barrier: the rename is
    /// not dominated by any counted barrier, so a crash can publish a
    /// name whose bytes never reached the platter.
    pub fn publish_unflushed(&self, tmp: &Path, dst: &Path, dir: &Path) -> Result<()> {
        std::fs::rename(tmp, dst)?;
        barrier::fsync_dir_counted(dir)?;
        Ok(())
    }

    /// Violation 2 — publish whose directory entry is never made
    /// durable: the content barrier ran, but no `fsync_dir_counted`
    /// follows the rename.
    pub fn publish_no_dir_fsync(&self, file: &std::fs::File, tmp: &Path, dst: &Path) -> Result<()> {
        barrier::sync_all_counted(file)?;
        std::fs::rename(tmp, dst)?;
        Ok(())
    }

    /// Violation 3 — WAL truncation with no manifest commit anywhere
    /// before it: the recovery prefix is gone before the flush result
    /// is durable.
    pub fn truncate_first(&mut self, upto: u64, version: u32) -> Result<()> {
        self.wal.truncate_prefix(upto)?;
        self.manifest.commit_version(version)?;
        Ok(())
    }

    /// Violation 4 — the commit only happens on one branch, but the
    /// truncation is unconditional, so the commit does not dominate it.
    pub fn branchy_commit(&mut self, upto: u64, version: Option<u32>) -> Result<()> {
        if let Some(v) = version {
            self.manifest.commit_version(v)?;
        }
        self.wal.truncate_prefix(upto)?;
        Ok(())
    }

    /// Violation 5 — a kill point parked nowhere near a durable
    /// operation: whatever it was meant to guard, it no longer cuts
    /// the schedule right before it.
    pub fn detached_kill_point(&self, input: &[u8]) -> Result<usize> {
        self.failpoint.check("fixture.detached")?;
        let mut acc = 0usize;
        let mut parity = 0usize;
        let mut high = 0usize;
        let mut low = usize::MAX;
        for byte in input {
            acc += *byte as usize;
        }
        for byte in input {
            parity ^= *byte as usize;
        }
        if acc > high {
            high = acc;
        }
        if parity < low {
            low = parity;
        }
        Ok(acc + parity + high + low)
    }
}

mod barrier {
    pub fn sync_all_counted(_file: &std::fs::File) -> std::io::Result<()> {
        Ok(())
    }

    pub fn fsync_dir_counted(_dir: &std::path::Path) -> std::io::Result<()> {
        Ok(())
    }
}
