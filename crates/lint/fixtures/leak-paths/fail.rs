//! Seeded error-path resource leaks. Never compiled — parsed by the
//! `leak-paths` analysis in the lint's tests.
//! Expected: exactly three `leak-paths` findings.

type Result<T> = std::io::Result<T>;

pub struct Page;
pub struct Tree;
pub struct BatchLog;
pub struct Stamp;

/// Violation 1 — a fallible page-writing loop with no `PageReservation`
/// in scope: the `?` on a later iteration leaks every page already
/// written this call.
pub fn build_pages(backend: &dyn StorageBackend, chunks: &[Vec<u8>]) -> Result<Vec<u64>> {
    let mut ids = Vec::new();
    for chunk in chunks {
        let id = backend.write_page(&Page::from_bytes(chunk))?;
        ids.push(id);
    }
    Ok(ids)
}

/// Violation 2 — a batch staged under an explicit id that is never
/// committed in this function: the id stays burned in the batch log
/// with no matching commit-or-release.
pub fn stage_only(tree: &mut Tree, slice: &[u8], id: u64) -> Result<Stamp> {
    let stamp = tree.stage_batch(slice, Some(id))?;
    Ok(stamp)
}

/// Violation 3 — a fallible operation between stage and commit: the
/// `?` on the WAL flush abandons the staged id without releasing it.
pub fn stage_then_flush(tree: &mut Tree, log: &BatchLog, slice: &[u8], id: u64) -> Result<()> {
    tree.stage_batch(slice, Some(id))?;
    tree.flush_wal()?;
    log.commit(id)?;
    Ok(())
}
