//! Leak-free allocation windows the `leak-paths` analysis must accept.
//! Never compiled — parsed by the lint's tests.
//! Expected: zero `leak-paths` findings.

type Result<T> = std::io::Result<T>;

pub struct Page;
pub struct Tree;
pub struct BatchLog;
pub struct Stamp;

/// The RAII-covered form of the fallible page-writing loop: a
/// `PageReservation` opened before the first write retires every
/// covered page if an error path unwinds out.
pub fn build_pages_covered(backend: &dyn StorageBackend, chunks: &[Vec<u8>]) -> Result<Vec<u64>> {
    let mut reservation = crate::reclaim::PageReservation::new(backend);
    let mut ids = Vec::new();
    for chunk in chunks {
        let id = backend.write_page(&Page::from_bytes(chunk))?;
        reservation.add(id);
        ids.push(id);
    }
    reservation.defuse();
    Ok(ids)
}

/// Stage and commit with nothing fallible in between: the staged id
/// reaches its commit on every path that survives the stage itself.
pub fn stage_and_commit(tree: &mut Tree, log: &BatchLog, slice: &[u8], id: u64) -> Result<()> {
    tree.stage_batch(slice, Some(id))?;
    log.commit(id)?;
    Ok(())
}

/// Auto-assigned batch ids (no `Some(id)` argument) are recycled by the
/// batch log itself and are not tracked by this rule.
pub fn stage_auto(tree: &mut Tree, slice: &[u8]) -> Result<Stamp> {
    let stamp = tree.stage_batch(slice, None)?;
    Ok(stamp)
}

/// An infallible writer: no `?` or early return, so there is no error
/// path on which a page could leak.
pub fn write_one(backend: &dyn StorageBackend, page: &Page) -> u64 {
    match backend.write_page(page) {
        Ok(id) => id,
        Err(_) => 0,
    }
}
