// must-fail: raw lock constructions outside crates/sync
use parking_lot::Mutex;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

struct Shared {
    state: std::sync::RwLock<u64>,
}
