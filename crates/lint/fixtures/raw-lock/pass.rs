// must-pass: ranked primitives, and the std::sync items that are NOT locks
use lethe_sync::{Condvar, LockRank, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::sync::mpsc;

struct Shared {
    engine: Arc<Mutex<u64>>,
    stats: AtomicU64,
}

fn build() -> Shared {
    Shared { engine: Arc::new(Mutex::new(LockRank::Engine, 0)), stats: AtomicU64::new(0) }
}
