// must-fail: a raw fsync bypasses the counted barrier helpers
fn persist(file: &std::fs::File) -> std::io::Result<()> {
    file.sync_all()?;
    Ok(())
}

fn persist_data(file: &std::fs::File) -> std::io::Result<()> {
    file.sync_data()
}
