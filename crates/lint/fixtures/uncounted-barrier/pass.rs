// must-pass: barriers go through the counted helpers, which charge the
// component's fsync counter
fn persist(file: &std::fs::File, fsyncs: &AtomicU64) -> Result<()> {
    barrier::sync_all_counted(file, fsyncs)?;
    barrier::sync_data_counted(file, fsyncs)?;
    barrier::fsync_dir_counted(path, fsyncs)
}
