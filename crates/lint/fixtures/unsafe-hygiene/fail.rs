//! must-fail: a crate root with no unsafe_code gate.

pub mod something;
