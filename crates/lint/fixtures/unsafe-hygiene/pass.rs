//! must-pass: the crate root forbids unsafe code.

#![forbid(unsafe_code)]

pub mod something;
