//! Deliberate lock-order inversions, transplanted from the runtime
//! detector's suite (`tests/lock_rank.rs`) into statically-caught form.
//! Never compiled — parsed by the `lock-order` analysis in the lint's
//! tests. Expected: exactly three `lock-order` findings.

/// Mirror of the workspace's `LockRank` (subset, same relative order).
pub enum LockRank {
    OracleState,
    WorkerState,
    Engine,
    CommitQueueState,
    CommitSlot,
    Wal,
}

pub struct QueueInner;
pub struct EngineInner;
pub struct WorkerInner;

pub struct CommitQueue {
    state: Mutex<QueueInner>,
}

impl CommitQueue {
    pub fn new() -> CommitQueue {
        CommitQueue { state: Mutex::new(LockRank::CommitQueueState, QueueInner) }
    }
}

pub struct Shard {
    engine: Mutex<EngineInner>,
    worker_state: Mutex<WorkerInner>,
}

impl Shard {
    pub fn new(index: usize) -> Shard {
        Shard {
            engine: Mutex::with_order(LockRank::Engine, index, EngineInner),
            worker_state: Mutex::new(LockRank::WorkerState, WorkerInner),
        }
    }

    /// Violation 1 — the leader protocol locks the engine and then drains
    /// the commit queue state; nesting the other way around deadlocks
    /// against it. (`engine_lock_under_commit_queue_state_is_an_inversion`)
    pub fn engine_under_queue_state(&self, queue: &CommitQueue) {
        let _state = queue.state.lock();
        let _engine = self.engine.lock();
    }

    /// Violation 2 — worker wakeup under the engine lock, one call deep:
    /// the inversion is only visible through the call graph.
    /// (`worker_state_under_engine_lock_is_an_inversion`)
    pub fn wake_under_engine(&self) {
        let _engine = self.engine.lock();
        self.wake_worker();
    }

    fn wake_worker(&self) {
        let _guard = self.worker_state.lock();
    }

    /// Violation 3 — the `with_shard` tail-temporary hazard: the tail
    /// expression's engine guard outlives the block local `_parked`, so
    /// `PauseGuard::drop` locks the worker state while the engine is
    /// still held.
    pub fn with_shard_buggy<R>(&self, f: impl FnOnce(&mut EngineInner) -> R) -> R {
        let _parked = self.pause();
        f(&mut self.engine.lock())
    }

    fn pause(&self) -> PauseGuard<'_> {
        PauseGuard { shard: self }
    }
}

pub struct PauseGuard<'a> {
    shard: &'a Shard,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        let _guard = self.shard.worker_state.lock();
    }
}
