//! Legal lock nestings the `lock-order` analysis must accept. Never
//! compiled — parsed by the lint's tests. Expected: zero findings.

/// Mirror of the workspace's `LockRank` (subset, same relative order).
pub enum LockRank {
    OracleState,
    WorkerState,
    Engine,
    CommitQueueState,
    CommitSlot,
    Wal,
}

pub struct QueueInner;
pub struct EngineInner;
pub struct WorkerInner;

pub struct CommitQueue {
    state: Mutex<QueueInner>,
}

impl CommitQueue {
    pub fn new() -> CommitQueue {
        CommitQueue { state: Mutex::new(LockRank::CommitQueueState, QueueInner) }
    }
}

pub struct CommitSlotCell {
    slot: Mutex<Option<u64>>,
}

impl CommitSlotCell {
    pub fn new() -> CommitSlotCell {
        CommitSlotCell { slot: Mutex::new(LockRank::CommitSlot, None) }
    }
}

pub struct WalCell {
    wal: Mutex<Vec<u8>>,
}

impl WalCell {
    pub fn new() -> WalCell {
        WalCell { wal: Mutex::new(LockRank::Wal, Vec::new()) }
    }
}

pub struct Shard {
    engine: Mutex<EngineInner>,
    worker_state: Mutex<WorkerInner>,
}

impl Shard {
    pub fn new(index: usize) -> Shard {
        Shard {
            engine: Mutex::with_order(LockRank::Engine, index, EngineInner),
            worker_state: Mutex::new(LockRank::WorkerState, WorkerInner),
        }
    }

    /// The fixed `with_shard` form: the guard is a *named* block local, so
    /// it drops before `_parked` (locals drop in reverse declaration
    /// order) and `PauseGuard::drop` runs with nothing held.
    pub fn with_shard_fixed<R>(&self, f: impl FnOnce(&mut EngineInner) -> R) -> R {
        let _parked = self.pause();
        let mut engine = self.engine.lock();
        let out = f(&mut engine);
        drop(engine);
        out
    }

    /// Same shape without the explicit `drop`: reverse declaration order
    /// already releases the engine guard first.
    pub fn with_shard_fixed_implicit<R>(&self, f: impl FnOnce(&mut EngineInner) -> R) -> R {
        let _parked = self.pause();
        let mut engine = self.engine.lock();
        f(&mut engine)
    }

    /// The deepest real nesting on the write path, strictly ascending:
    /// engine → commit queue drain → outcome slot → WAL.
    /// (`full_write_path_nesting_is_legal`)
    pub fn write_path(&self, queue: &CommitQueue, slot: &CommitSlotCell, wal: &WalCell) {
        let _engine = self.engine.lock();
        let _state = queue.state.lock();
        let _slot = slot.slot.lock();
        let _wal = wal.wal.lock();
    }

    /// Cross-shard 2PC: engine locks are `with_order`, so same-rank
    /// nesting is legal (ascending index order is the runtime's check).
    /// (`ascending_cross_shard_locks_are_legal`)
    pub fn lock_pair(&self, other: &Shard) {
        let _lo = self.engine.lock();
        let _hi = other.engine.lock();
    }

    fn pause(&self) -> PauseGuard<'_> {
        PauseGuard { shard: self }
    }
}

pub struct PauseGuard<'a> {
    shard: &'a Shard,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        let _guard = self.shard.worker_state.lock();
    }
}
