//! Rule-shaped text inside raw strings and nested block comments must
//! never fire: the lexer tracks these structurally, not by regex.
//! Expected: zero findings for every rule.

/* outer /* inner mentions .sync_all() and .unwrap() */ and the outer
   level mentions backend.drop_page(id) before closing */

/// Raw strings with hash fences, embedded quotes, and embedded
/// `"#`-lookalikes; none of the rule patterns inside may fire.
pub fn banner() -> &'static str {
    r##"fenced "#raw"# text: backend.drop_page(id); panic!("boom");
        std::sync::Mutex::new(()); file.sync_all(); x.unwrap()"##
}

/// A byte string and an escaped quote for good measure.
pub fn bytes() -> &'static [u8] {
    b"drop_page \" sync_data() unreachable!()"
}
