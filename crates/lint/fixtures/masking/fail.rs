//! Violations that naive comment/string blanking used to mask: each
//! real violation sits right after a construct (raw string, nested
//! block comment) that a regex-based scrubber mis-tracks.
//! Expected: exactly two `uncounted-barrier` findings.

/// The raw string contains quotes and a barrier-shaped token; the
/// `sync_all` on the next line is the real violation.
pub fn flush_after_banner(file: &std::fs::File) -> std::io::Result<()> {
    let _banner = r#"say "hello" and mention .sync_all() freely"#;
    file.sync_all()?;
    Ok(())
}

/// Nested block comments: a scrubber that closes at the first `*/`
/// treats the rest of the file as comment and misses the violation.
pub fn flush_after_nested_comment(file: &std::fs::File) -> std::io::Result<()> {
    /* nested /* comment mentioning sync_data() */ still closed here */
    file.sync_data()?;
    Ok(())
}
