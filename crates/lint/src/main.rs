//! `lethe-lint`: run the workspace invariant checks and exit non-zero on any
//! violation. Usage: `lethe-lint [workspace-root]` (defaults to the current
//! directory; CI runs it from the repo root).

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = Path::new(&root);
    if !root.join("Cargo.toml").exists() {
        eprintln!("lethe-lint: {} does not look like a workspace root", root.display());
        return ExitCode::FAILURE;
    }
    let findings = lethe_lint::run(root);
    if findings.is_empty() {
        println!("lethe-lint: clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!("lethe-lint: {} violation(s)", findings.len());
    ExitCode::FAILURE
}
