//! `lethe-lint`: run the workspace invariant checks and exit non-zero on any
//! violation. Usage: `lethe-lint [--format text|json] [workspace-root]`
//! (defaults to the current directory; CI runs it from the repo root).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let Some(value) = args.next() else {
                    eprintln!("lethe-lint: --format needs a value (text or json)");
                    return ExitCode::from(2);
                };
                match value.as_str() {
                    "text" => format = Format::Text,
                    "json" => format = Format::Json,
                    other => {
                        eprintln!("lethe-lint: unknown format {other:?} (want text or json)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: lethe-lint [--format text|json] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("lethe-lint: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!("lethe-lint: {} does not look like a workspace root", root.display());
        return ExitCode::from(2);
    }
    let findings = lethe_lint::run(&root);
    match format {
        Format::Text => {
            if findings.is_empty() {
                println!("lethe-lint: clean");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("lethe-lint: {} violation(s)", findings.len());
            }
        }
        Format::Json => println!("{}", lethe_lint::to_json(&findings)),
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
