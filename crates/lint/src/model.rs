//! Statement/event model over token trees.
//!
//! Function bodies are parsed into a nested [`Block`] structure whose
//! statements carry a flat, textually-ordered list of [`Piece`]s: lock
//! acquisitions, calls, `?` operators, `return`s, `drop()`s, and nested
//! blocks classified by control-flow role ([`Ctx`]):
//!
//! * `Scope`  — an unconditional bare `{ … }` (or `= { … }`) block: runs
//!   exactly once, so facts established inside it propagate outward.
//! * `Branch` — a conditionally-executed block (`if`/`else`/`match` arm/
//!   loop body/struct literal): facts inside do **not** propagate.
//! * `Closure` — a closure body: runs at some other time (or never), so
//!   its `?`/`return` are not exits of the enclosing function.
//!
//! The model is deliberately approximate — it is a lint, not a compiler —
//! but the approximations are chosen so that the analyses stay sound for
//! the shapes this workspace actually uses (see ARCHITECTURE.md,
//! "Correctness tooling").

use crate::lexer::{Delim, Kind};
use crate::syntax::{Group, Tree};

/// Control-flow role of a nested block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctx {
    /// Unconditional scope block: executes exactly once.
    Scope,
    /// Conditional block: may or may not execute.
    Branch,
    /// Closure body: deferred execution.
    Closure,
}

/// A parsed sequence of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement and the events inside it.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Line of the statement's first token.
    pub line: u32,
    /// Simple `let` binding name, if the pattern is one identifier.
    pub let_name: Option<String>,
    /// True for the block's tail expression (no trailing `;`).
    pub is_tail: bool,
    /// True when the statement's scrutinee temporaries extend through its
    /// nested blocks (`match`, `if let`, `while let`); a plain `if`'s
    /// condition temporaries drop before the body runs.
    pub extends_temps: bool,
    /// Events and nested blocks in textual order.
    pub pieces: Vec<Piece>,
}

/// A call expression (free, path or method).
#[derive(Debug, Clone)]
pub struct CallEv {
    /// Path identifiers (`std::fs::rename` → `[std, fs, rename]`;
    /// method calls carry just the method name).
    pub path: Vec<String>,
    /// True for `.name(…)` method syntax.
    pub method: bool,
    /// Receiver identifier for method calls (`self.frob()` → `self`);
    /// empty for path calls or unrecognisable receivers.
    pub recv: String,
    /// Source line.
    pub line: u32,
    /// True when the call sits inside a nested paren/bracket group of its
    /// statement (i.e. it is an argument subexpression, not the statement's
    /// own top-level chain).
    pub nested: bool,
    /// True when textually inside a closure.
    pub in_closure: bool,
    /// First string literal among the call's top-level arguments.
    pub first_str: Option<String>,
    /// Top-level identifier arguments (used to spot `Some(id)`).
    pub arg_idents: Vec<String>,
}

impl CallEv {
    /// Last path segment (the function/method name).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// One event or nested block inside a statement.
#[derive(Debug, Clone)]
pub enum Piece {
    /// A zero-argument `.lock()`/`.read()`/`.write()`/`.try_lock()` on a
    /// field — a ranked-lock acquisition candidate.
    Acquire {
        /// Last identifier of the receiver chain (`self.mem.active` →
        /// `active`); empty when unrecognisable.
        recv: String,
        /// Source line.
        line: u32,
        /// True when inside a nested group (argument position).
        nested: bool,
        /// True when textually inside a closure.
        in_closure: bool,
        /// True when the chain continues past the acquisition
        /// (`x.read().len()`): the guard is a temporary even under `let`.
        chained: bool,
    },
    /// A call expression.
    Call(CallEv),
    /// The `?` operator.
    Question {
        /// Source line.
        line: u32,
        /// True when textually inside a closure.
        in_closure: bool,
    },
    /// A `return` keyword.
    Return {
        /// Source line.
        line: u32,
        /// True when textually inside a closure.
        in_closure: bool,
    },
    /// An explicit `drop(name)`.
    DropOf {
        /// The dropped binding.
        name: String,
        /// Source line.
        line: u32,
    },
    /// A nested block.
    Nested {
        /// The parsed block.
        block: Block,
        /// Its control-flow role.
        ctx: Ctx,
    },
}

/// Keywords that make a following brace group a statement boundary.
fn is_block_kw(t: &Tree) -> bool {
    ["if", "while", "for", "loop", "match", "unsafe", "else"].iter().any(|k| t.is_ident(k))
}

/// Parses a brace group's trees into a [`Block`].
pub fn parse_block(trees: &[Tree]) -> Block {
    let mut stmts = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    let mut semi_terminated = false;
    while i < trees.len() {
        let t = &trees[i];
        if t.is_punct(";") {
            if i > start {
                stmts.push(make_stmt(&trees[start..i]));
            }
            semi_terminated = true;
            start = i + 1;
            i += 1;
            continue;
        }
        if t.group(Some(Delim::Brace)).is_some() {
            let begins_block_stmt =
                i == start || (start < trees.len() && is_block_kw(&trees[start]));
            let next_continues = trees.get(i + 1).is_some_and(|n| {
                n.is_ident("else") || n.is_punct("?") || n.is_punct(".") || n.is_punct(";")
            });
            if begins_block_stmt && !next_continues {
                stmts.push(make_stmt(&trees[start..=i]));
                semi_terminated = false;
                start = i + 1;
            }
        }
        i += 1;
    }
    if start < trees.len() {
        stmts.push(make_stmt(&trees[start..]));
        semi_terminated = false;
    }
    if !semi_terminated {
        if let Some(last) = stmts.last_mut() {
            last.is_tail = true;
        }
    }
    Block { stmts }
}

/// Builds one statement from its trees.
fn make_stmt(trees: &[Tree]) -> Stmt {
    let line = trees.first().map_or(0, Tree::line);
    let let_name = extract_let_name(trees);
    let extends_temps = trees.first().is_some_and(|h| h.is_ident("match"))
        || (trees.first().is_some_and(|h| h.is_ident("if") || h.is_ident("while"))
            && trees.get(1).is_some_and(|n| n.is_ident("let")));
    let mut pieces = Vec::new();
    scan_level(trees, false, false, true, &mut pieces);
    Stmt { line, let_name, is_tail: false, extends_temps, pieces }
}

/// `let [mut] name [: ty] = …` → `Some(name)`; destructuring → `None`.
fn extract_let_name(trees: &[Tree]) -> Option<String> {
    let head = trees.first()?;
    if !head.is_ident("let") && !head.is_ident("static") && !head.is_ident("const") {
        return None;
    }
    let mut name = None;
    for t in &trees[1..] {
        if t.is_punct("=") || t.is_punct(":") {
            break;
        }
        match t.leaf() {
            Some(tok) if tok.kind == Kind::Ident => {
                if tok.text == "mut" || tok.text == "ref" {
                    continue;
                }
                if name.is_some() {
                    return None; // not a simple pattern
                }
                name = Some(tok.text.clone());
            }
            Some(_) => continue,
            None => return None, // tuple/struct pattern
        }
    }
    name
}

/// Whether the tree before a `|` is an operand (making the `|` a binary
/// operator rather than a closure head).
fn is_operand(prev: Option<&Tree>) -> bool {
    match prev {
        None => false,
        Some(Tree::Group(_)) => true,
        Some(Tree::Leaf(t)) => match t.kind {
            Kind::Ident => t.text != "move" && t.text != "return",
            Kind::Num | Kind::Str | Kind::Char | Kind::Lifetime => true,
            _ => false,
        },
    }
}

/// Scans one nesting level of a statement, pushing events in textual
/// order. `nested` marks argument position (inside parens/brackets);
/// `at_stmt_top` is true only for the statement's own top level.
fn scan_level(
    trees: &[Tree],
    nested: bool,
    in_closure: bool,
    at_stmt_top: bool,
    pieces: &mut Vec<Piece>,
) {
    let mut i = 0usize;
    let mut closure_tail = false; // a brace-less closure body covers the rest of this level
    let mut last_kw: Option<String> = None;
    while i < trees.len() {
        let in_closure = in_closure || closure_tail;
        match &trees[i] {
            Tree::Leaf(t) => {
                if t.is_punct("?") {
                    pieces.push(Piece::Question { line: t.line, in_closure });
                    i += 1;
                    continue;
                }
                if t.is_ident("return") {
                    pieces.push(Piece::Return { line: t.line, in_closure });
                    i += 1;
                    continue;
                }
                if t.kind == Kind::Ident && is_block_kw(&trees[i]) {
                    last_kw = Some(t.text.clone());
                    i += 1;
                    continue;
                }
                // method call: `.name(...)`
                if t.is_punct(".") {
                    if let (Some(m), Some(args)) = (
                        trees.get(i + 1).and_then(Tree::leaf).filter(|m| m.kind == Kind::Ident),
                        trees.get(i + 2).and_then(|a| a.group(Some(Delim::Paren))),
                    ) {
                        let is_acquire = args.trees.is_empty()
                            && matches!(m.text.as_str(), "lock" | "read" | "write" | "try_lock");
                        if is_acquire {
                            let chained = trees
                                .get(i + 3)
                                .is_some_and(|n| n.is_punct(".") || n.is_punct("?"));
                            pieces.push(Piece::Acquire {
                                recv: receiver_of(trees, i),
                                line: m.line,
                                nested,
                                in_closure,
                                chained,
                            });
                        } else {
                            pieces.push(Piece::Call(call_ev(
                                vec![m.text.clone()],
                                true,
                                receiver_of(trees, i),
                                m.line,
                                nested,
                                in_closure,
                                args,
                            )));
                        }
                        scan_level(&args.trees, true, in_closure, false, pieces);
                        i += 3;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                // path (possibly a call): `a::b::c(...)`
                if t.kind == Kind::Ident {
                    let mut path = vec![t.text.clone()];
                    let mut k = i + 1;
                    while trees.get(k).is_some_and(|p| p.is_punct("::"))
                        && trees
                            .get(k + 1)
                            .and_then(Tree::leaf)
                            .is_some_and(|n| n.kind == Kind::Ident)
                    {
                        path.push(trees[k + 1].leaf().expect("ident").text.clone());
                        k += 2;
                    }
                    if let Some(args) = trees.get(k).and_then(|a| a.group(Some(Delim::Paren))) {
                        if path.len() == 1 && path[0] == "drop" && !args.trees.is_empty() {
                            if let Some(name) =
                                single_ident_arg(args).filter(|_| args.trees.len() <= 3)
                            {
                                pieces.push(Piece::DropOf { name, line: t.line });
                                scan_level(&args.trees, true, in_closure, false, pieces);
                                i = k + 1;
                                continue;
                            }
                        }
                        pieces.push(Piece::Call(call_ev(
                            path,
                            false,
                            String::new(),
                            t.line,
                            nested,
                            in_closure,
                            args,
                        )));
                        scan_level(&args.trees, true, in_closure, false, pieces);
                        i = k + 1;
                        continue;
                    }
                    i = k.max(i + 1);
                    continue;
                }
                // closure head
                if (t.is_punct("|") || t.is_punct("||"))
                    && !is_operand(if i == 0 { None } else { Some(&trees[i - 1]) })
                {
                    let body_at = if t.is_punct("||") {
                        i + 1
                    } else {
                        // skip to the closing `|` of the parameter list
                        let mut j = i + 1;
                        while j < trees.len() && !trees[j].is_punct("|") {
                            j += 1;
                        }
                        j + 1
                    };
                    if let Some(body) =
                        trees.get(body_at).and_then(|b| b.group(Some(Delim::Brace)))
                    {
                        pieces.push(Piece::Nested {
                            block: parse_block(&body.trees),
                            ctx: Ctx::Closure,
                        });
                        i = body_at + 1;
                    } else {
                        closure_tail = true;
                        i = body_at;
                    }
                    continue;
                }
                i += 1;
            }
            Tree::Group(g) => {
                match g.delim {
                    Delim::Paren | Delim::Bracket => {
                        scan_level(&g.trees, true, in_closure, false, pieces);
                    }
                    Delim::Brace => {
                        if last_kw.as_deref() == Some("match") {
                            for arm in parse_match_arms(g) {
                                pieces.push(Piece::Nested {
                                    block: arm,
                                    ctx: if in_closure { Ctx::Closure } else { Ctx::Branch },
                                });
                            }
                        } else {
                            let after_eq =
                                i > 0 && trees[i - 1].is_punct("=");
                            let ctx = if in_closure {
                                Ctx::Closure
                            } else if (i == 0 && at_stmt_top && !nested) || after_eq {
                                Ctx::Scope
                            } else {
                                Ctx::Branch
                            };
                            pieces.push(Piece::Nested { block: parse_block(&g.trees), ctx });
                        }
                        last_kw = None;
                    }
                }
                i += 1;
            }
        }
    }
}

fn call_ev(
    path: Vec<String>,
    method: bool,
    recv: String,
    line: u32,
    nested: bool,
    in_closure: bool,
    args: &Group,
) -> CallEv {
    let first_str = args.trees.iter().find_map(|t| {
        t.leaf().filter(|tok| tok.kind == Kind::Str).map(|tok| tok.text.clone())
    });
    let arg_idents = args
        .trees
        .iter()
        .filter_map(|t| t.leaf().filter(|tok| tok.kind == Kind::Ident).map(|tok| tok.text.clone()))
        .collect();
    CallEv { path, method, recv, line, nested, in_closure, first_str, arg_idents }
}

/// The sole identifier argument of a call, if the args are that simple.
fn single_ident_arg(args: &Group) -> Option<String> {
    let idents: Vec<_> = args
        .trees
        .iter()
        .filter_map(|t| t.leaf().filter(|tok| tok.kind == Kind::Ident))
        .collect();
    match idents.as_slice() {
        [only] => Some(only.text.clone()),
        _ => None,
    }
}

/// Receiver of a method chain ending at the `.` at `dot`: the nearest
/// preceding identifier, looking through one index expression.
fn receiver_of(trees: &[Tree], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &trees[j] {
            Tree::Leaf(t) if t.kind == Kind::Ident => return t.text.clone(),
            Tree::Group(g) if g.delim == Delim::Bracket => continue, // `xs[i].lock()`
            _ => break,
        }
    }
    String::new()
}

/// Splits a `match` body group into one block per arm (pattern and guard
/// tokens are not modelled; arm bodies are).
fn parse_match_arms(g: &Group) -> Vec<Block> {
    let mut arms = Vec::new();
    let mut i = 0usize;
    while i < g.trees.len() {
        if !g.trees[i].is_punct("=>") {
            i += 1;
            continue;
        }
        let body_at = i + 1;
        match g.trees.get(body_at) {
            Some(Tree::Group(b)) if b.delim == Delim::Brace => {
                arms.push(parse_block(&b.trees));
                i = body_at + 1;
            }
            Some(_) => {
                // expression arm: trees until the next top-level comma
                let mut j = body_at;
                while j < g.trees.len() && !g.trees[j].is_punct(",") {
                    j += 1;
                }
                let mut stmt = make_stmt(&g.trees[body_at..j]);
                stmt.is_tail = true;
                arms.push(Block { stmts: vec![stmt] });
                i = j;
            }
            None => break,
        }
    }
    arms
}

/// A statement flattened out of its nesting, used for "within the next N
/// statements" adjacency windows.
pub struct FlatStmt<'a> {
    /// The statement's direct (non-block) pieces, in order.
    pub events: Vec<&'a Piece>,
}

/// Pre-order flattening of a block; closure bodies are skipped unless
/// `include_closures` (their statements execute at some other time).
pub fn flatten<'a>(block: &'a Block, include_closures: bool, out: &mut Vec<FlatStmt<'a>>) {
    for stmt in &block.stmts {
        let events: Vec<&Piece> = stmt
            .pieces
            .iter()
            .filter(|p| !matches!(p, Piece::Nested { .. }))
            .collect();
        out.push(FlatStmt { events });
        for piece in &stmt.pieces {
            if let Piece::Nested { block, ctx } = piece {
                if *ctx != Ctx::Closure || include_closures {
                    flatten(block, include_closures, out);
                }
            }
        }
    }
}

/// Lock constructor found anywhere in a file.
#[derive(Debug, Clone)]
pub struct LockCtor {
    /// The binding the lock is stored under (struct field, `let`/`static`
    /// name), when recognisable.
    pub binding: Option<String>,
    /// The `LockRank` variant named in the constructor args.
    pub rank: String,
    /// True for `with_order` constructors (same-rank nesting is legal,
    /// index order checked at runtime).
    pub ordered: bool,
    /// Source line.
    pub line: u32,
}

/// Scans a whole file's trees for `Mutex::new/with_order` and
/// `RwLock::new/with_order` constructors that name a `LockRank`, tracking
/// the binding context (struct-literal field, `let` name, `static` name).
pub fn collect_lock_ctors(trees: &[Tree]) -> Vec<LockCtor> {
    let mut out = Vec::new();
    ctor_scan(trees, None, &mut out);
    out
}

fn ctor_scan(trees: &[Tree], outer: Option<&str>, out: &mut Vec<LockCtor>) {
    let mut field: Option<String> = None;
    let mut let_name: Option<String> = None;
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) => {
                if t.is_punct(",") || t.is_punct(";") {
                    field = None;
                    if t.is_punct(";") {
                        let_name = None;
                    }
                    i += 1;
                    continue;
                }
                if t.is_ident("let") || t.is_ident("static") || t.is_ident("const") {
                    // take the binding name: next ident that isn't mut/ref
                    let mut j = i + 1;
                    while let Some(n) = trees.get(j).and_then(Tree::leaf) {
                        if n.kind == Kind::Ident && n.text != "mut" && n.text != "ref" {
                            let_name = Some(n.text.clone());
                            break;
                        }
                        if n.kind != Kind::Ident {
                            break;
                        }
                        j += 1;
                    }
                    i += 1;
                    continue;
                }
                if t.kind == Kind::Ident {
                    // `name:` (single colon) sets the field context
                    if trees.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                        field = Some(t.text.clone());
                        i += 2;
                        continue;
                    }
                    // `Mutex::new(…)` / `RwLock::with_order(…)`
                    if (t.text == "Mutex" || t.text == "RwLock")
                        && trees.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    {
                        if let Some(kind) = trees
                            .get(i + 2)
                            .and_then(Tree::leaf)
                            .filter(|k| k.text == "new" || k.text == "with_order")
                        {
                            if let Some(args) =
                                trees.get(i + 3).and_then(|a| a.group(Some(Delim::Paren)))
                            {
                                if let Some(rank) = find_rank(args) {
                                    let binding = field
                                        .clone()
                                        .or_else(|| let_name.clone())
                                        .or_else(|| outer.map(str::to_string));
                                    out.push(LockCtor {
                                        binding,
                                        rank,
                                        ordered: kind.text == "with_order",
                                        line: t.line,
                                    });
                                }
                            }
                        }
                    }
                }
                i += 1;
            }
            Tree::Group(g) => {
                let ctx = field.as_deref().or(let_name.as_deref()).or(outer);
                ctor_scan(&g.trees, ctx, out);
                i += 1;
            }
        }
    }
}

/// Finds `LockRank::Variant` inside a constructor's argument group.
fn find_rank(args: &Group) -> Option<String> {
    let trees = &args.trees;
    for (i, t) in trees.iter().enumerate() {
        if t.is_ident("LockRank")
            && trees.get(i + 1).is_some_and(|p| p.is_punct("::"))
        {
            if let Some(v) = trees.get(i + 2).and_then(Tree::leaf) {
                if v.kind == Kind::Ident {
                    return Some(v.text.clone());
                }
            }
        }
    }
    None
}
