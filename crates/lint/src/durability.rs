//! Durability-protocol ordering dataflow.
//!
//! Intraprocedural checks over commit tails, using the structured
//! dominator discipline of the statement model: an operation in an
//! earlier statement of the same (or an enclosing) sequence dominates;
//! unconditional `Scope` blocks propagate their operations outward;
//! `Branch` blocks do not (an op that only happens on one path proves
//! nothing about the others); closure bodies are ignored.
//!
//! Three protocol rules:
//! 1. **WAL truncation**: `truncate_prefix` discards the only copy of
//!    recent batches, so a manifest-edit commit
//!    (`commit_version`/`commit_or_release`/`commit_manifest_for`) must
//!    dominate it on every path.
//! 2. **Atomic-rename publish**: `fs::rename` makes a file visible, so a
//!    counted barrier (`sync_all_counted`/`sync_data_counted`) on the
//!    content must dominate it, and a directory fsync
//!    (`fsync_dir_counted`) must follow later in the same function.
//! 3. **Kill-point adjacency**: a registered `FailPoint::check` site is
//!    only meaningful next to the durable operation it guards; a durable
//!    op must appear within the same statement or a short window of
//!    following statements (frame construction in between is fine).

use std::collections::BTreeSet;

use crate::model::{flatten, Block, CallEv, Ctx, FlatStmt, Piece};
use crate::{Finding, ParsedFile};

/// Calls that commit a manifest edit (and may therefore precede WAL
/// truncation).
const MANIFEST_COMMIT_OPS: &[&str] = &["commit_version", "commit_or_release", "commit_manifest_for"];

/// Counted content barriers.
const BARRIER_OPS: &[&str] = &["sync_all_counted", "sync_data_counted"];

/// Directory barrier that completes an atomic-rename publish.
const DIR_FSYNC: &str = "fsync_dir_counted";

/// How many statements of frame/record construction may sit between a
/// kill point and the durable operation it guards.
const KILL_ADJACENCY_WINDOW: usize = 8;

/// Operations that count as "the durable op a kill point guards".
const DURABLE_OPS: &[&str] = &[
    "rename",
    "remove_file",
    "sync_all_counted",
    "sync_data_counted",
    "fsync_dir_counted",
    "write_all",
    "write_frame_locked",
    "write_page",
    "write_marker",
    "create",
    "commit",
    "commit_or_release",
    "commit_version",
    "install",
    "retire_table",
    "truncate_prefix",
    "set_len",
    "append",
    "append_nosync",
    "stage_batch",
    "wal_commit",
    "persist",
    "flush",
];

fn is_fs_rename(c: &CallEv) -> bool {
    !c.method && c.name() == "rename" && c.path.iter().any(|s| s == "fs")
}

/// Runs the durability checks over the in-scope files.
pub fn check(files: &[&ParsedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for (fj, func) in file.items.functions.iter().enumerate() {
            if func.is_test {
                continue;
            }
            let body = &file.bodies[fj];
            let mut doms = BTreeSet::new();
            dominator_walk(body, &file.rel, &mut doms, &mut findings);
            let mut flat = Vec::new();
            flatten(body, false, &mut flat);
            adjacency_checks(&flat, &file.rel, &mut findings);
        }
    }
    findings
}

/// Walks a block carrying the set of call names that dominate the
/// current point; reports rules 1 and 2a (missing barrier) at each site.
fn dominator_walk(
    block: &Block,
    rel: &str,
    doms: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for stmt in &block.stmts {
        for piece in &stmt.pieces {
            match piece {
                Piece::Call(c) if !c.in_closure => {
                    if c.name() == "truncate_prefix"
                        && c.method
                        && !MANIFEST_COMMIT_OPS.iter().any(|op| doms.contains(*op))
                    {
                        findings.push(Finding {
                            rule: "durability-order",
                            file: rel.to_string(),
                            line: c.line as usize,
                            message: "truncate_prefix without a dominating manifest-edit \
                                      commit: a crash after the truncate replays nothing and \
                                      loses the batches the WAL prefix held (commit_version / \
                                      commit_or_release / commit_manifest_for must come first \
                                      on every path)"
                                .to_string(),
                        });
                    }
                    if is_fs_rename(c) && !BARRIER_OPS.iter().any(|op| doms.contains(*op)) {
                        findings.push(Finding {
                            rule: "durability-order",
                            file: rel.to_string(),
                            line: c.line as usize,
                            message: "atomic-rename publish without a dominating counted \
                                      barrier: the renamed file's content may still be \
                                      unflushed when its name becomes visible \
                                      (sync_all_counted / sync_data_counted must come first \
                                      on every path)"
                                .to_string(),
                        });
                    }
                    doms.insert(c.name().to_string());
                }
                Piece::Nested { block: inner, ctx } => match ctx {
                    Ctx::Scope => dominator_walk(inner, rel, doms, findings),
                    Ctx::Branch => {
                        let mut branch_doms = doms.clone();
                        dominator_walk(inner, rel, &mut branch_doms, findings);
                    }
                    Ctx::Closure => {}
                },
                _ => {}
            }
        }
    }
}

/// Rules 2b (directory fsync after rename) and 3 (kill-point adjacency)
/// over the flattened statement list.
fn adjacency_checks(flat: &[FlatStmt<'_>], rel: &str, findings: &mut Vec<Finding>) {
    for (si, stmt) in flat.iter().enumerate() {
        for (ei, piece) in stmt.events.iter().enumerate() {
            let Piece::Call(c) = piece else { continue };
            if c.in_closure {
                continue;
            }
            if is_fs_rename(c) {
                // the fsync need not be immediate (a rename *away* to a
                // .old name may come between), but it must follow somewhere
                // in the same function
                let found =
                    window_calls(flat, si, ei, usize::MAX).any(|call| call.name() == DIR_FSYNC);
                if !found {
                    findings.push(Finding {
                        rule: "durability-order",
                        file: rel.to_string(),
                        line: c.line as usize,
                        message: "atomic-rename publish with no directory fsync afterwards: \
                                  the new directory entry is not durable until \
                                  fsync_dir_counted runs"
                            .to_string(),
                    });
                }
            }
            if c.method && c.name() == "check" {
                if let Some(site) = &c.first_str {
                    let guarded = window_calls(flat, si, ei, KILL_ADJACENCY_WINDOW)
                        .any(|call| DURABLE_OPS.contains(&call.name()));
                    if !guarded {
                        findings.push(Finding {
                            rule: "durability-order",
                            file: rel.to_string(),
                            line: c.line as usize,
                            message: format!(
                                "kill point {site:?} is not adjacent to the durable \
                                 operation it guards (no durable op within the next \
                                 {KILL_ADJACENCY_WINDOW} statements); move the check next \
                                 to the op so the crash sweep exercises the intended window"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Calls after event `ei` of statement `si`, through the next `n`
/// flattened statements.
fn window_calls<'a>(
    flat: &'a [FlatStmt<'a>],
    si: usize,
    ei: usize,
    n: usize,
) -> impl Iterator<Item = &'a CallEv> {
    let same_stmt = flat[si].events.iter().skip(ei + 1);
    let later = flat[si + 1..].iter().take(n).flat_map(|s| s.events.iter());
    same_stmt.chain(later).filter_map(|p| match p {
        Piece::Call(c) => Some(c),
        _ => None,
    })
}
