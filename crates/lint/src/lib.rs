//! Repo-specific static invariant checks for the Lethe workspace.
//!
//! `lethe-lint` is a dependency-free source-level analyser — a hand-rolled
//! lexer + token-tree parser (the clippy/rust-analyzer idiom, minus the
//! compiler) with item and statement models on top, not a line scanner.
//! It enforces the conventions the type system cannot:
//!
//! | rule id               | invariant                                                            |
//! |-----------------------|----------------------------------------------------------------------|
//! | `raw-drop-page`       | `drop_page` calls only in the retirement choke point / cache wrapper |
//! | `uncounted-barrier`   | every `sync_all`/`sync_data` goes through the counted barrier helpers|
//! | `kill-point-registry` | `FailPoint::check` site names ⇆ `KILL_POINTS` registry, both ways    |
//! | `raw-lock`            | no `std::sync`/`parking_lot` lock types outside `crates/sync`        |
//! | `no-panic`            | no `unwrap`/`expect`/`panic!` in non-test storage/lsm code           |
//! | `unsafe-hygiene`      | every crate root carries `#![forbid(unsafe_code)]` (or `deny`)       |
//! | `lock-order`          | static may-hold-while-acquiring graph respects the `LockRank` order  |
//! | `durability-order`    | commit dominates WAL truncate; barrier dominates rename publish;     |
//! |                       | kill points sit adjacent to the durable op they guard                |
//! | `leak-paths`          | page ids / staged batch ids reach register-or-release on every       |
//! |                       | `?`/early-return path                                                |
//! | `stale-allow`         | every `lint:allow` marker names a rule that still exists             |
//!
//! A violation is silenced by a marker on the same line or the line above:
//! `// lint:allow(<rule-id>): <reason>` — the reason is mandatory.
//!
//! Because rules match token patterns rather than text, content inside
//! string literals (raw or not) and comments (nested or not) can neither
//! trigger nor mask a rule. `#[cfg(test)]` regions are tracked
//! structurally from the attribute's brace group, and test functions are
//! exempt from every rule except the registry cross-check.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod durability;
mod leaks;
mod lexer;
mod lockgraph;
mod model;
mod rules;
mod syntax;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

use lexer::{Kind, Tok};
use model::{Block, LockCtor};
use syntax::{FileItems, Tree};

/// One rule violation: where it is and what convention it breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`raw-drop-page`, `lock-order`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Line-keyed metadata for one file: `#[cfg(test)]` spans (structural)
/// and `lint:allow` markers.
pub(crate) struct SourceMaps {
    test_spans: Vec<(u32, u32)>,
    allows: BTreeMap<usize, Vec<String>>,
}

impl SourceMaps {
    /// Whether a 1-based line is inside a `#[cfg(test)]` item.
    pub(crate) fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether `rule` is allowed at `line` by a marker on the same line
    /// or the line above.
    pub(crate) fn allowed(&self, rule: &str, line: usize) -> bool {
        for probe in [line, line.saturating_sub(1)] {
            if let Some(rules) = self.allows.get(&probe) {
                if rules.iter().any(|r| r == rule) {
                    return true;
                }
            }
        }
        false
    }

    /// All allow markers: (line, rule ids).
    pub(crate) fn allow_entries(&self) -> impl Iterator<Item = (usize, &Vec<String>)> {
        self.allows.iter().map(|(l, r)| (*l, r))
    }
}

/// One fully-parsed source file, shared by every analysis.
pub(crate) struct ParsedFile {
    pub(crate) rel: String,
    pub(crate) toks: Vec<Tok>,
    pub(crate) items: FileItems,
    /// Parsed bodies, aligned with `items.functions`.
    pub(crate) bodies: Vec<Block>,
    pub(crate) ctors: Vec<LockCtor>,
    pub(crate) maps: SourceMaps,
}

fn parse_file(rel: &str, source: &str) -> ParsedFile {
    let toks = lexer::lex(source);
    let trees = syntax::build_trees(toks.clone());
    let items = syntax::collect_items(&trees);
    let bodies =
        items.functions.iter().map(|f| model::parse_block(&f.body.trees)).collect::<Vec<_>>();
    let ctors = model::collect_lock_ctors(&trees);
    let maps =
        SourceMaps { test_spans: items.test_spans.clone(), allows: collect_allows(source) };
    ParsedFile { rel: rel.to_string(), toks, items, bodies, ctors, maps }
}

/// Collects `// lint:allow(rule): reason` markers (reason mandatory) from
/// the raw source.
fn collect_allows(source: &str) -> BTreeMap<usize, Vec<String>> {
    let mut out: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, raw) in source.lines().enumerate() {
        let Some(pos) = raw.find("lint:allow(") else {
            continue;
        };
        let rest = &raw[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        // the reason after "):" must be non-empty, otherwise the marker is
        // ignored (an unexplained suppression is itself a smell)
        let after = rest[close + 1..].trim_start();
        if let Some(reason) = after.strip_prefix(':') {
            if !reason.trim().is_empty() {
                out.entry(idx + 1).or_default().push(rule);
            }
        }
    }
    out
}

/// Runs every single-file rule against one workspace-relative file.
pub fn check_file(rel: &str, source: &str) -> Vec<Finding> {
    let parsed = parse_file(rel, source);
    check_file_parsed(&parsed)
}

fn check_file_parsed(parsed: &ParsedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    rules::raw_drop_page(&parsed.rel, &parsed.toks, &parsed.maps, &mut findings);
    rules::uncounted_barrier(&parsed.rel, &parsed.toks, &parsed.maps, &mut findings);
    rules::raw_lock(&parsed.rel, &parsed.toks, &parsed.maps, &mut findings);
    rules::no_panic(&parsed.rel, &parsed.toks, &parsed.maps, &mut findings);
    rules::stale_allow(&parsed.rel, &parsed.maps, &mut findings);
    findings
}

/// Crate roots whose source directories take part in the cross-file
/// analyses (the protocol-bearing crates).
const ANALYSIS_ROOTS: &[&str] = &["crates/core/src/", "crates/lsm/src/", "crates/storage/src/"];

/// Runs the cross-file analyses (`lock-order`, `durability-order`,
/// `leak-paths`) over a set of `(workspace-relative path, source)` pairs.
///
/// The `LockRank` order is parsed from whichever input file declares
/// `enum LockRank` (in the real tree, `crates/sync/src/lib.rs`); without
/// one, the lock-order analysis has no rank table and reports nothing.
/// Only files under the protocol-bearing crates (`crates/core`,
/// `crates/lsm`, `crates/storage`) are analysed.
pub fn check_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> =
        files.iter().map(|(rel, src)| parse_file(rel, src)).collect();
    check_workspace_parsed(&parsed)
}

fn check_workspace_parsed(parsed: &[ParsedFile]) -> Vec<Finding> {
    // rank order from the LockRank enum, wherever it is declared
    let mut variants = Vec::new();
    for file in parsed {
        let trees = syntax::build_trees(file.toks.clone());
        if let Some(v) = find_rank_enum(&trees) {
            variants = v;
            break;
        }
    }
    let mut ordered = BTreeSet::new();
    for file in parsed {
        for ctor in &file.ctors {
            if ctor.ordered {
                ordered.insert(ctor.rank.clone());
            }
        }
    }
    let ranks = lockgraph::RankTable::new(variants, ordered);

    let scope: Vec<&ParsedFile> = parsed
        .iter()
        .filter(|f| ANALYSIS_ROOTS.iter().any(|root| f.rel.starts_with(root)))
        .collect();
    let mut findings = Vec::new();
    findings.extend(lockgraph::check(&scope, &ranks));
    findings.extend(durability::check(&scope));
    findings.extend(leaks::check(&scope));

    // apply allow markers per file
    let maps: BTreeMap<&str, &SourceMaps> =
        parsed.iter().map(|f| (f.rel.as_str(), &f.maps)).collect();
    findings.retain(|f| {
        maps.get(f.file.as_str()).is_none_or(|m| !m.allowed(f.rule, f.line))
    });
    findings
}

/// Finds `enum LockRank { … }` anywhere in a file and returns the
/// variant names in declaration order.
fn find_rank_enum(trees: &[Tree]) -> Option<Vec<String>> {
    for (i, t) in trees.iter().enumerate() {
        if t.is_ident("enum")
            && trees.get(i + 1).is_some_and(|n| n.is_ident("LockRank"))
        {
            let body = trees.get(i + 2)?.group(Some(lexer::Delim::Brace))?;
            let variants = body
                .trees
                .iter()
                .filter_map(|v| v.leaf())
                .filter(|tok| tok.kind == Kind::Ident)
                .map(|tok| tok.text.clone())
                .collect();
            return Some(variants);
        }
        if let Tree::Group(g) = t {
            if let Some(v) = find_rank_enum(&g.trees) {
                return Some(v);
            }
        }
    }
    None
}

/// Cross-checks the fail-point site names found in source (`sites`: name →
/// (file, line)) against the `KILL_POINTS` registry in the crash-recovery
/// suite (`registry`: name → line). Both directions are errors: an
/// unregistered site is untested, a registered name with no site is dead.
pub fn check_kill_points(
    sites: &BTreeMap<String, (String, usize)>,
    registry: &BTreeMap<String, usize>,
    registry_file: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, (file, line)) in sites {
        if !registry.contains_key(name) {
            findings.push(Finding {
                rule: "kill-point-registry",
                file: file.clone(),
                line: *line,
                message: format!(
                    "fail-point site {name:?} is not listed in KILL_POINTS ({registry_file}); \
                     the crash sweeps will never assert coverage for it"
                ),
            });
        }
    }
    for (name, line) in registry {
        if !sites.contains_key(name) {
            findings.push(Finding {
                rule: "kill-point-registry",
                file: registry_file.to_string(),
                line: *line,
                message: format!(
                    "KILL_POINTS entry {name:?} matches no FailPoint::check site in the source; \
                     remove the dead registry entry"
                ),
            });
        }
    }
    findings
}

/// Parses the `KILL_POINTS` registry from the crash-recovery suite: every
/// string literal between the `lint:kill-points-registry:begin`/`:end`
/// marker comments.
pub fn parse_registry(source: &str) -> BTreeMap<String, usize> {
    let mut registry = BTreeMap::new();
    let mut inside = false;
    for (idx, raw) in source.lines().enumerate() {
        if raw.contains("lint:kill-points-registry:begin") {
            inside = true;
            continue;
        }
        if raw.contains("lint:kill-points-registry:end") {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let mut rest = raw;
        while let Some(start) = rest.find('"') {
            let Some(len) = rest[start + 1..].find('"') else {
                break;
            };
            registry.insert(rest[start + 1..start + 1 + len].to_string(), idx + 1);
            rest = &rest[start + len + 2..];
        }
    }
    registry
}

/// Checks a crate root for the `unsafe_code` lint gate.
pub fn rule_unsafe_hygiene(rel: &str, source: &str) -> Option<Finding> {
    let is_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")));
    if !is_root {
        return None;
    }
    // token-level: `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]`
    let toks = lexer::lex(source);
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("#")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("forbid") || n.is_ident("deny"))
            && toks.get(i + 5).is_some_and(|n| n.is_ident("unsafe_code"))
        {
            return None;
        }
    }
    Some(Finding {
        rule: "unsafe-hygiene",
        file: rel.to_string(),
        line: 1,
        message: "crate root is missing #![forbid(unsafe_code)] (or #![deny(unsafe_code)])"
            .to_string(),
    })
}

/// Recursively collects `.rs` files under `dir`, returning workspace-relative
/// paths (sorted for deterministic output).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Runs every rule over the workspace rooted at `root` (`crates/*/src` and
/// `src/` for the code rules, `tests/crash_recovery.rs` for the kill-point
/// registry). I/O errors on individual files are reported as findings so a
/// truncated checkout cannot pass silently.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(root, &dir.join("src"), &mut files);
        }
    }
    collect_rs(root, &root.join("src"), &mut files);

    let mut findings = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut sites: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for rel in &files {
        let source = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding {
                    rule: "io",
                    file: rel.clone(),
                    line: 0,
                    message: format!("unreadable source file: {e}"),
                });
                continue;
            }
        };
        if let Some(f) = rule_unsafe_hygiene(rel, &source) {
            findings.push(f);
        }
        let file = parse_file(rel, &source);
        findings.extend(check_file_parsed(&file));
        for (name, line) in rules::kill_point_sites(&file.toks, &file.maps) {
            sites.entry(name).or_insert((rel.clone(), line as usize));
        }
        parsed.push(file);
    }
    findings.extend(check_workspace_parsed(&parsed));

    let registry_file = "tests/crash_recovery.rs";
    match std::fs::read_to_string(root.join(registry_file)) {
        Ok(source) => {
            let registry = parse_registry(&source);
            if registry.is_empty() {
                findings.push(Finding {
                    rule: "kill-point-registry",
                    file: registry_file.to_string(),
                    line: 1,
                    message: "no KILL_POINTS registry found (missing \
                              lint:kill-points-registry markers)"
                        .to_string(),
                });
            } else {
                findings.extend(check_kill_points(&sites, &registry, registry_file));
            }
        }
        Err(e) => findings.push(Finding {
            rule: "kill-point-registry",
            file: registry_file.to_string(),
            line: 0,
            message: format!("unreadable registry file: {e}"),
        }),
    }

    // deduplicate (a pattern can match twice on one line) and sort for
    // stable CI output
    let set: BTreeSet<(String, usize, &'static str, String)> =
        findings.into_iter().map(|f| (f.file, f.line, f.rule, f.message)).collect();
    set.into_iter()
        .map(|(file, line, rule, message)| Finding { rule, file, line, message })
        .collect()
}

/// Serialises findings as JSON (hand-rolled; the lint stays
/// dependency-free): `{"count": N, "findings": [{…}]}`.
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message)
        ));
    }
    out.push_str("]}");
    out
}
