//! Repo-specific static invariant checks for the Lethe workspace.
//!
//! `lethe-lint` is a lightweight, dependency-free Rust source scanner — not a
//! compiler plugin — that enforces the conventions the type system cannot:
//!
//! | rule id               | invariant                                                            |
//! |-----------------------|----------------------------------------------------------------------|
//! | `raw-drop-page`       | `drop_page` calls only in the retirement choke point / cache wrapper |
//! | `uncounted-barrier`   | every `sync_all`/`sync_data` goes through the counted barrier helpers|
//! | `kill-point-registry` | `FailPoint::check` site names ⇆ `KILL_POINTS` registry, both ways    |
//! | `raw-lock`            | no `std::sync`/`parking_lot` lock types outside `crates/sync`        |
//! | `no-panic`            | no `unwrap`/`expect`/`panic!` in non-test storage/lsm code           |
//! | `unsafe-hygiene`      | every crate root carries `#![forbid(unsafe_code)]` (or `deny`)       |
//!
//! A violation is silenced by a marker on the same line or the line above:
//! `// lint:allow(<rule-id>): <reason>` — the reason is mandatory.
//!
//! The scanner strips comments and string literals before matching (so this
//! file's own rule table does not trip the rules), tracks `#[cfg(test)]`
//! module bodies brace-by-brace (test code is exempt from every rule except
//! the registry cross-check), and extracts string literals that feed
//! `FailPoint::check` for the kill-point registry.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// One rule violation: where it is and what convention it breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`raw-drop-page`, `no-panic`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A source file reduced to scannable form: comments and string-literal
/// bodies blanked out, `lint:allow` markers and `#[cfg(test)]` regions
/// resolved, string literals extracted with their call context.
pub struct Scanned {
    /// The source with comment text and string-literal contents replaced by
    /// spaces (quotes and newlines preserved, so offsets and line numbers
    /// still correspond to the original).
    pub code: String,
    /// For every 1-based line, whether it lies inside a `#[cfg(test)]`
    /// module body.
    test_line: Vec<bool>,
    /// `lint:allow` markers: line → rule ids allowed on that line and the
    /// next.
    allows: BTreeMap<usize, Vec<String>>,
    /// Extracted string literals: (content, 1-based line, byte offset of the
    /// opening quote in `code`).
    strings: Vec<(String, usize, usize)>,
}

impl Scanned {
    /// Strips `source` into scannable form.
    pub fn new(source: &str) -> Scanned {
        let (code, strings) = blank_comments_and_strings(source);
        let test_line = mark_test_lines(&code);
        let allows = collect_allows(source);
        Scanned { code, test_line, allows, strings }
    }

    /// Whether 1-based `line` is inside a `#[cfg(test)]` module body.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_line.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }

    /// Whether `rule` is allowed at `line` by a marker on the same line or
    /// the line above.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        for probe in [line, line.saturating_sub(1)] {
            if let Some(rules) = self.allows.get(&probe) {
                if rules.iter().any(|r| r == rule) {
                    return true;
                }
            }
        }
        false
    }

    /// 1-based line number of byte `offset` in `code`.
    fn line_of(&self, offset: usize) -> usize {
        self.code.as_bytes()[..offset].iter().filter(|&&b| b == b'\n').count() + 1
    }

    /// String literals whose opening quote is directly preceded (modulo
    /// whitespace) by `prefix` — e.g. `".check("` to find fail-point sites.
    pub fn strings_after(&self, prefix: &str) -> Vec<(String, usize)> {
        let bytes = self.code.as_bytes();
        let mut out = Vec::new();
        for (content, line, offset) in &self.strings {
            let mut end = *offset;
            while end > 0 && (bytes[end - 1] as char).is_whitespace() {
                end -= 1;
            }
            if end >= prefix.len() && &self.code[end - prefix.len()..end] == prefix {
                out.push((content.clone(), *line));
            }
        }
        out
    }
}

/// Replaces comment text and string-literal bodies with spaces, preserving
/// line structure, and collects the string literals. Handles nested block
/// comments, raw strings with hashes, and char literals vs. lifetimes.
fn blank_comments_and_strings(source: &str) -> (String, Vec<(String, usize, usize)>) {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    fn push_blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
        }
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            // blank the whole line comment (markers are collected from the
            // raw source separately)
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1usize;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    push_blank(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        if b == b'r' && i + 1 < bytes.len() && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#') {
            // possible raw string r"..." / r#"..."#
            let mut j = i + 1;
            let mut hashes = 0usize;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' {
                let quote_off = out.len() + (j - i);
                out.push(b'r');
                out.extend(std::iter::repeat_n(b'#', hashes));
                out.push(b'"');
                let start_line = line;
                let mut k = j + 1;
                let mut content = String::new();
                while k < bytes.len() {
                    if bytes[k] == b'"'
                        && bytes[k + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                            == hashes
                    {
                        out.push(b'"');
                        out.extend(std::iter::repeat_n(b'#', hashes));
                        k += 1 + hashes;
                        break;
                    }
                    if bytes[k] == b'\n' {
                        line += 1;
                    }
                    content.push(bytes[k] as char);
                    push_blank(&mut out, bytes[k]);
                    k += 1;
                }
                strings.push((content, start_line, quote_off));
                i = k;
                continue;
            }
        }
        if b == b'"' {
            let quote_off = out.len();
            out.push(b'"');
            let start_line = line;
            let mut content = String::new();
            let mut j = i + 1;
            while j < bytes.len() {
                if bytes[j] == b'\\' && j + 1 < bytes.len() {
                    content.push(bytes[j] as char);
                    content.push(bytes[j + 1] as char);
                    push_blank(&mut out, bytes[j]);
                    push_blank(&mut out, bytes[j + 1]);
                    line += bytes[j..j + 2].iter().filter(|&&c| c == b'\n').count();
                    j += 2;
                    continue;
                }
                if bytes[j] == b'"' {
                    out.push(b'"');
                    j += 1;
                    break;
                }
                if bytes[j] == b'\n' {
                    line += 1;
                }
                content.push(bytes[j] as char);
                push_blank(&mut out, bytes[j]);
                j += 1;
            }
            strings.push((content, start_line, quote_off));
            i = j;
            continue;
        }
        if b == b'\'' {
            // char literal vs. lifetime: a literal closes within a couple of
            // bytes (`'a'`, `'\n'`); a lifetime is never followed by `'`
            let lookahead = &bytes[i + 1..bytes.len().min(i + 4)];
            let is_char = match lookahead.first() {
                Some(b'\\') => true,
                Some(_) => lookahead.get(1) == Some(&b'\''),
                None => false,
            };
            if is_char {
                out.push(b'\'');
                let mut j = i + 1;
                if j < bytes.len() && bytes[j] == b'\\' {
                    push_blank(&mut out, bytes[j]);
                    j += 1;
                    // skip the escaped char so `'\''` terminates correctly
                    if j < bytes.len() {
                        push_blank(&mut out, bytes[j]);
                        j += 1;
                    }
                }
                while j < bytes.len() && bytes[j] != b'\'' {
                    push_blank(&mut out, bytes[j]);
                    j += 1;
                }
                if j < bytes.len() {
                    out.push(b'\'');
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    (String::from_utf8_lossy(&out).into_owned(), strings)
}

/// Marks the lines covered by `#[cfg(test)]`-attributed items (modules or
/// functions) by matching the brace group that follows the attribute.
fn mark_test_lines(code: &str) -> Vec<bool> {
    let lines = code.lines().count().max(1);
    let mut test = vec![false; lines];
    let bytes = code.as_bytes();
    let needle = b"#[cfg(test)]";
    let mut i = 0usize;
    while let Some(pos) = find_from(bytes, needle, i) {
        i = pos + needle.len();
        let Some(open) = bytes[i..].iter().position(|&b| b == b'{') else {
            break;
        };
        let open = i + open;
        let mut depth = 0usize;
        let mut end = open;
        for (j, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = line_at(bytes, pos);
        let last = line_at(bytes, end);
        for entry in test.iter_mut().take(last.min(lines)).skip(first.saturating_sub(1)) {
            *entry = true;
        }
    }
    test
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

fn line_at(bytes: &[u8], offset: usize) -> usize {
    bytes[..offset].iter().filter(|&&b| b == b'\n').count() + 1
}

/// Collects `// lint:allow(rule): reason` markers (reason mandatory) from
/// the raw source.
fn collect_allows(source: &str) -> BTreeMap<usize, Vec<String>> {
    let mut out: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, raw) in source.lines().enumerate() {
        let Some(pos) = raw.find("lint:allow(") else {
            continue;
        };
        let rest = &raw[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        // the reason after "):" must be non-empty, otherwise the marker is
        // ignored (an unexplained suppression is itself a smell)
        let after = rest[close + 1..].trim_start();
        if let Some(reason) = after.strip_prefix(':') {
            if !reason.trim().is_empty() {
                out.entry(idx + 1).or_default().push(rule);
            }
        }
    }
    out
}

/// Files exempt from `raw-drop-page`: the retirement choke point and the
/// cache's invalidating wrapper.
const DROP_PAGE_EXEMPT: &[&str] = &["crates/lsm/src/reclaim.rs", "crates/storage/src/cache.rs"];

/// The only module allowed to call `sync_all`/`sync_data` directly.
const BARRIER_MODULE: &str = "crates/storage/src/barrier.rs";

/// Crates whose non-test code must be panic-free.
const NO_PANIC_ROOTS: &[&str] = &["crates/storage/src/", "crates/lsm/src/"];

/// Runs every single-file rule against one workspace-relative file.
pub fn check_file(rel: &str, source: &str) -> Vec<Finding> {
    let scanned = Scanned::new(source);
    let mut findings = Vec::new();
    rule_raw_drop_page(rel, &scanned, &mut findings);
    rule_uncounted_barrier(rel, &scanned, &mut findings);
    rule_raw_lock(rel, &scanned, &mut findings);
    rule_no_panic(rel, &scanned, &mut findings);
    findings
}

/// Reports `pattern` occurrences in non-test, non-allowed lines of `code`.
fn scan_pattern(
    rel: &str,
    scanned: &Scanned,
    rule: &'static str,
    pattern: &str,
    message: &str,
    findings: &mut Vec<Finding>,
) {
    let bytes = scanned.code.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = find_from(bytes, pattern.as_bytes(), i) {
        i = pos + pattern.len();
        let line = scanned.line_of(pos);
        if scanned.is_test_line(line) || scanned.allowed(rule, line) {
            continue;
        }
        findings.push(Finding { rule, file: rel.to_string(), line, message: message.to_string() });
    }
}

fn rule_raw_drop_page(rel: &str, scanned: &Scanned, findings: &mut Vec<Finding>) {
    if DROP_PAGE_EXEMPT.contains(&rel) {
        return;
    }
    scan_pattern(
        rel,
        scanned,
        "raw-drop-page",
        ".drop_page(",
        "raw drop_page call: route page retirement through lethe_lsm::reclaim::retire_page \
         (cache invalidation and the retirement policy live there)",
        findings,
    );
}

fn rule_uncounted_barrier(rel: &str, scanned: &Scanned, findings: &mut Vec<Finding>) {
    if rel == BARRIER_MODULE {
        return;
    }
    for pattern in [".sync_all(", ".sync_data("] {
        scan_pattern(
            rel,
            scanned,
            "uncounted-barrier",
            pattern,
            "uncounted durability barrier: use lethe_storage::barrier::sync_*_counted so \
             IoSnapshot.fsyncs stays exact",
            findings,
        );
    }
}

fn rule_raw_lock(rel: &str, scanned: &Scanned, findings: &mut Vec<Finding>) {
    if rel.starts_with("crates/sync/") || rel.starts_with("crates/lint/") {
        return;
    }
    // any parking_lot mention at all
    scan_pattern(
        rel,
        scanned,
        "raw-lock",
        "parking_lot",
        "raw lock: use the ranked primitives in lethe_sync instead of parking_lot",
        findings,
    );
    // std::sync lock types, both `std::sync::Mutex::new` paths and
    // `use std::sync::{.., Mutex, ..}` imports
    let bytes = scanned.code.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = find_from(bytes, b"std::sync::", i) {
        i = pos + "std::sync::".len();
        let flagged = leading_ident_group_matches(&scanned.code[i..], |ident| {
            matches!(ident, "Mutex" | "RwLock" | "Condvar")
        });
        if flagged {
            let line = scanned.line_of(pos);
            if scanned.is_test_line(line) || scanned.allowed("raw-lock", line) {
                continue;
            }
            findings.push(Finding {
                rule: "raw-lock",
                file: rel.to_string(),
                line,
                message: "raw lock: use the ranked lethe_sync::{Mutex, RwLock, Condvar} \
                          (deadlock-checked in debug builds) instead of std::sync"
                    .to_string(),
            });
        }
    }
}

/// Applies `pred` to the identifier(s) that begin `rest`: either one bare
/// path segment (`Mutex::new`) or every top-level identifier of a brace
/// group (`{Arc, Mutex as StdMutex}`). Returns true if any matches.
fn leading_ident_group_matches(rest: &str, pred: impl Fn(&str) -> bool) -> bool {
    let rest = rest.trim_start();
    if let Some(group) = rest.strip_prefix('{') {
        let Some(close) = group.find('}') else {
            return false;
        };
        group[..close]
            .split(',')
            .map(|part| part.split_whitespace().next().unwrap_or(""))
            .any(pred)
    } else {
        let ident: String =
            rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        pred(&ident)
    }
}

fn rule_no_panic(rel: &str, scanned: &Scanned, findings: &mut Vec<Finding>) {
    if !NO_PANIC_ROOTS.iter().any(|root| rel.starts_with(root)) {
        return;
    }
    for pattern in
        [".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("]
    {
        scan_pattern(
            rel,
            scanned,
            "no-panic",
            pattern,
            "panic path in storage/lsm code: return a StorageError, or justify with \
             a `lint:allow(no-panic): reason` marker",
            findings,
        );
    }
}

/// Cross-checks the fail-point site names found in source (`sites`: name →
/// (file, line)) against the `KILL_POINTS` registry in the crash-recovery
/// suite (`registry`: name → line). Both directions are errors: an
/// unregistered site is untested, a registered name with no site is dead.
pub fn check_kill_points(
    sites: &BTreeMap<String, (String, usize)>,
    registry: &BTreeMap<String, usize>,
    registry_file: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, (file, line)) in sites {
        if !registry.contains_key(name) {
            findings.push(Finding {
                rule: "kill-point-registry",
                file: file.clone(),
                line: *line,
                message: format!(
                    "fail-point site {name:?} is not listed in KILL_POINTS ({registry_file}); \
                     the crash sweeps will never assert coverage for it"
                ),
            });
        }
    }
    for (name, line) in registry {
        if !sites.contains_key(name) {
            findings.push(Finding {
                rule: "kill-point-registry",
                file: registry_file.to_string(),
                line: *line,
                message: format!(
                    "KILL_POINTS entry {name:?} matches no FailPoint::check site in the source; \
                     remove the dead registry entry"
                ),
            });
        }
    }
    findings
}

/// Parses the `KILL_POINTS` registry from the crash-recovery suite: every
/// string literal between the `lint:kill-points-registry:begin`/`:end`
/// marker comments.
pub fn parse_registry(source: &str) -> BTreeMap<String, usize> {
    let mut registry = BTreeMap::new();
    let mut inside = false;
    for (idx, raw) in source.lines().enumerate() {
        if raw.contains("lint:kill-points-registry:begin") {
            inside = true;
            continue;
        }
        if raw.contains("lint:kill-points-registry:end") {
            inside = false;
            continue;
        }
        if !inside {
            continue;
        }
        let mut rest = raw;
        while let Some(start) = rest.find('"') {
            let Some(len) = rest[start + 1..].find('"') else {
                break;
            };
            registry.insert(rest[start + 1..start + 1 + len].to_string(), idx + 1);
            rest = &rest[start + len + 2..];
        }
    }
    registry
}

/// Checks a crate root for the `unsafe_code` lint gate.
pub fn rule_unsafe_hygiene(rel: &str, source: &str) -> Option<Finding> {
    let is_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")));
    if !is_root {
        return None;
    }
    if source.contains("#![forbid(unsafe_code)]") || source.contains("#![deny(unsafe_code)]") {
        return None;
    }
    Some(Finding {
        rule: "unsafe-hygiene",
        file: rel.to_string(),
        line: 1,
        message: "crate root is missing #![forbid(unsafe_code)] (or #![deny(unsafe_code)])"
            .to_string(),
    })
}

/// Recursively collects `.rs` files under `dir`, returning workspace-relative
/// paths (sorted for deterministic output).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Runs every rule over the workspace rooted at `root` (`crates/*/src` and
/// `src/` for the code rules, `tests/crash_recovery.rs` for the kill-point
/// registry). I/O errors on individual files are reported as findings so a
/// truncated checkout cannot pass silently.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(root, &dir.join("src"), &mut files);
        }
    }
    collect_rs(root, &root.join("src"), &mut files);

    let mut findings = Vec::new();
    let mut sites: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for rel in &files {
        let source = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding {
                    rule: "io",
                    file: rel.clone(),
                    line: 0,
                    message: format!("unreadable source file: {e}"),
                });
                continue;
            }
        };
        findings.extend(check_file(rel, &source));
        if let Some(f) = rule_unsafe_hygiene(rel, &source) {
            findings.push(f);
        }
        let scanned = Scanned::new(&source);
        for (name, line) in scanned.strings_after(".check(") {
            if !scanned.is_test_line(line) {
                sites.entry(name).or_insert((rel.clone(), line));
            }
        }
    }

    let registry_file = "tests/crash_recovery.rs";
    match std::fs::read_to_string(root.join(registry_file)) {
        Ok(source) => {
            let registry = parse_registry(&source);
            if registry.is_empty() {
                findings.push(Finding {
                    rule: "kill-point-registry",
                    file: registry_file.to_string(),
                    line: 1,
                    message: "no KILL_POINTS registry found (missing \
                              lint:kill-points-registry markers)"
                        .to_string(),
                });
            } else {
                findings.extend(check_kill_points(&sites, &registry, registry_file));
            }
        }
        Err(e) => findings.push(Finding {
            rule: "kill-point-registry",
            file: registry_file.to_string(),
            line: 0,
            message: format!("unreadable registry file: {e}"),
        }),
    }

    // deduplicate (a pattern can match twice on one line) and sort for
    // stable CI output
    let set: BTreeSet<(String, usize, &'static str, String)> =
        findings.into_iter().map(|f| (f.file, f.line, f.rule, f.message)).collect();
    set.into_iter()
        .map(|(file, line, rule, message)| Finding { rule, file, line, message })
        .collect()
}
