//! A minimal Rust lexer: the foundation every lint rule now sits on.
//!
//! The lexer turns source text into a flat token stream with 1-based line
//! numbers. It understands the constructs that defeated the old line
//! scanner by design — raw strings with hash fences (`r#"…"#`), byte and
//! byte-raw strings, *nested* block comments, and the char-literal vs.
//! lifetime ambiguity — so a rule pattern can never be masked by literal
//! or comment content again: literals become single `Str`/`Char` tokens
//! and comments produce no tokens at all.
//!
//! Only the punctuation joins the analyses care about are combined
//! (`::`, `->`, `=>`, `..=`, `..`, `&&`, `||`); notably `>>` is left as
//! two tokens so `Vec<Vec<u8>>` closes two angle-bracket levels.

/// The three bracket kinds that form token trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `self`, `truncate_prefix`, …).
    Ident,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
    /// String literal of any flavour; `text` holds the *content* between
    /// the quotes (escapes unprocessed).
    Str,
    /// Char or byte literal; `text` holds the content between the quotes.
    Char,
    /// Numeric literal, including suffixes (`0x1f`, `1_000u64`, `1.5`).
    Num,
    /// Punctuation; `text` holds the (possibly combined) operator.
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: Kind,
    /// The token text (see [`Kind`] for what it holds per kind).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }
}

fn ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into a token stream. Unterminated literals and comments
/// are tolerated (the token simply extends to end of input): the lint must
/// degrade gracefully on half-written code rather than panic.
pub fn lex(source: &str) -> Vec<Tok> {
    let b = source.as_bytes();
    let mut toks: Vec<Tok> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    while i < b.len() {
        let c = b[i];
        // whitespace
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // line comment (incl. doc comments)
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // block comment, nesting tracked
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // identifier — or a literal prefix (r"", r#""#, b"", br"", b'')
        if ident_start(c) {
            let start = i;
            while i < b.len() && ident_continue(b[i]) {
                i += 1;
            }
            let ident = &source[start..i];
            match ident {
                "r" | "br" if matches!(b.get(i), Some(b'"') | Some(b'#')) => {
                    if let Some((tok, next, lines)) = lex_raw_string(source, i, line) {
                        line += lines;
                        i = next;
                        toks.push(tok);
                        continue;
                    }
                }
                "b" if b.get(i) == Some(&b'"') => {
                    let (tok, next, lines) = lex_string(source, i, line);
                    line += lines;
                    i = next;
                    toks.push(tok);
                    continue;
                }
                "b" if b.get(i) == Some(&b'\'') => {
                    if let Some((tok, next)) = lex_char(source, i, line) {
                        i = next;
                        toks.push(tok);
                        continue;
                    }
                }
                _ => {}
            }
            toks.push(Tok { kind: Kind::Ident, text: ident.to_string(), line });
            continue;
        }
        // string literal
        if c == b'"' {
            let (tok, next, lines) = lex_string(source, i, line);
            line += lines;
            i = next;
            toks.push(tok);
            continue;
        }
        // char literal vs. lifetime
        if c == b'\'' {
            if let Some((tok, next)) = lex_char(source, i, line) {
                i = next;
                toks.push(tok);
            } else {
                // lifetime: quote followed by an identifier
                let start = i + 1;
                let mut j = start;
                while j < b.len() && ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: Kind::Lifetime, text: source[start..j].to_string(), line });
                i = j;
            }
            continue;
        }
        // number (incl. float dot, suffix letters; `1.5e-3` splits at the
        // sign, which no rule cares about)
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (ident_continue(b[i]) || b[i] == b'.') {
                if b[i] == b'.' {
                    // only consume the dot for a float: `0..n` must stay a
                    // range, `x.0` field access is reached via the punct arm
                    if b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        i += 1;
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            toks.push(Tok { kind: Kind::Num, text: source[start..i].to_string(), line });
            continue;
        }
        // delimiters
        let delim = match c {
            b'(' => Some((Kind::Open(Delim::Paren), "(")),
            b')' => Some((Kind::Close(Delim::Paren), ")")),
            b'[' => Some((Kind::Open(Delim::Bracket), "[")),
            b']' => Some((Kind::Close(Delim::Bracket), "]")),
            b'{' => Some((Kind::Open(Delim::Brace), "{")),
            b'}' => Some((Kind::Close(Delim::Brace), "}")),
            _ => None,
        };
        if let Some((kind, text)) = delim {
            toks.push(Tok { kind, text: text.to_string(), line });
            i += 1;
            continue;
        }
        // punctuation, longest-match over the combined set
        let rest = &source[i..];
        let combined = ["..=", "::", "->", "=>", "..", "&&", "||"]
            .iter()
            .find(|op| rest.starts_with(**op));
        if let Some(op) = combined {
            toks.push(Tok { kind: Kind::Punct, text: (*op).to_string(), line });
            i += op.len();
        } else {
            toks.push(Tok { kind: Kind::Punct, text: (c as char).to_string(), line });
            i += 1;
        }
    }
    toks
}

/// Lexes a plain (or byte) string starting at the opening quote `at`.
/// Returns the token, the index after the closing quote, and how many
/// newlines the literal spanned.
fn lex_string(source: &str, at: usize, line: u32) -> (Tok, usize, u32) {
    let b = source.as_bytes();
    let mut j = at + 1;
    let mut lines = 0u32;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                if b.get(j + 1) == Some(&b'\n') {
                    lines += 1;
                }
                j += 2;
            }
            b'"' => break,
            b'\n' => {
                lines += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let end = j.min(b.len());
    let content = source.get(start..end).unwrap_or("").to_string();
    (Tok { kind: Kind::Str, text: content, line }, end.saturating_add(1).min(b.len() + 1), lines)
}

/// Lexes a raw (or raw-byte) string whose hash fence starts at `at` (the
/// first `#` or the quote). Returns `None` if this is not actually a raw
/// string (e.g. `r#foo` raw identifier).
fn lex_raw_string(source: &str, at: usize, line: u32) -> Option<(Tok, usize, u32)> {
    let b = source.as_bytes();
    let mut j = at;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    let start = j;
    let mut lines = 0u32;
    while j < b.len() {
        if b[j] == b'"' && b[j + 1..].iter().take(hashes).all(|&h| h == b'#') && b[j + 1..].len() >= hashes {
            let content = source[start..j].to_string();
            return Some((Tok { kind: Kind::Str, text: content, line }, j + 1 + hashes, lines));
        }
        if b[j] == b'\n' {
            lines += 1;
        }
        j += 1;
    }
    Some((Tok { kind: Kind::Str, text: source[start..].to_string(), line }, b.len(), lines))
}

/// Lexes a char (or byte-char) literal starting at the quote `at`; returns
/// `None` when the quote begins a lifetime instead.
fn lex_char(source: &str, at: usize, line: u32) -> Option<(Tok, usize)> {
    let b = source.as_bytes();
    let is_char = match b.get(at + 1) {
        Some(b'\\') => true,
        // `'x'` closes immediately; `'a>` or `'a,` is a lifetime
        Some(_) => b.get(at + 2) == Some(&b'\''),
        None => false,
    };
    if !is_char {
        return None;
    }
    let mut j = at + 1;
    if b.get(j) == Some(&b'\\') {
        j += 2; // skip the escape head so `'\''` terminates correctly
    }
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    let content = source.get(at + 1..j).unwrap_or("").to_string();
    Some((Tok { kind: Kind::Char, text: content, line }, (j + 1).min(b.len())))
}
