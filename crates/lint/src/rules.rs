//! The original six rules, migrated from line/regex scanning onto the
//! token stream. Working on tokens closes the old masking window by
//! construction: string literals are single `Str` tokens and comments
//! never reach the stream, so `".sync_all()"` inside a banner string or a
//! nested block comment can no longer shadow (or fake) a violation.

use crate::lexer::{Delim, Kind, Tok};
use crate::{Finding, SourceMaps};

/// Files exempt from `raw-drop-page`: the retirement choke point and the
/// cache's invalidating wrapper.
pub const DROP_PAGE_EXEMPT: &[&str] =
    &["crates/lsm/src/reclaim.rs", "crates/storage/src/cache.rs"];

/// The only module allowed to call `sync_all`/`sync_data` directly.
pub const BARRIER_MODULE: &str = "crates/storage/src/barrier.rs";

/// Crates whose non-test code must be panic-free.
pub const NO_PANIC_ROOTS: &[&str] = &["crates/storage/src/", "crates/lsm/src/"];

/// Every rule id the lint knows; `stale-allow` cross-checks markers
/// against this list.
pub const KNOWN_RULES: &[&str] = &[
    "raw-drop-page",
    "uncounted-barrier",
    "kill-point-registry",
    "raw-lock",
    "no-panic",
    "unsafe-hygiene",
    "lock-order",
    "durability-order",
    "leak-paths",
    "stale-allow",
];

/// Emits a finding unless the line is test code or carries an allow.
fn emit(
    rel: &str,
    maps: &SourceMaps,
    rule: &'static str,
    line: u32,
    message: &str,
    findings: &mut Vec<Finding>,
) {
    if maps.is_test_line(line) || maps.allowed(rule, line as usize) {
        return;
    }
    findings.push(Finding {
        rule,
        file: rel.to_string(),
        line: line as usize,
        message: message.to_string(),
    });
}

/// `t` is `.name(` — i.e. a method-call head for one of `names`.
fn method_head<'a>(toks: &'a [Tok], i: usize, names: &[&str]) -> Option<&'a Tok> {
    if !toks[i].is_punct(".") {
        return None;
    }
    let m = toks.get(i + 1).filter(|t| t.kind == Kind::Ident)?;
    if !names.contains(&m.text.as_str()) {
        return None;
    }
    toks.get(i + 2).filter(|t| t.kind == Kind::Open(Delim::Paren))?;
    Some(m)
}

/// `raw-drop-page`: page retirement must go through the choke point.
pub fn raw_drop_page(rel: &str, toks: &[Tok], maps: &SourceMaps, findings: &mut Vec<Finding>) {
    if DROP_PAGE_EXEMPT.contains(&rel) {
        return;
    }
    for i in 0..toks.len() {
        if let Some(m) = method_head(toks, i, &["drop_page"]) {
            emit(
                rel,
                maps,
                "raw-drop-page",
                m.line,
                "raw drop_page call: route page retirement through \
                 lethe_lsm::reclaim::retire_page (cache invalidation and the retirement \
                 policy live there)",
                findings,
            );
        }
    }
}

/// `uncounted-barrier`: fsync must go through the counted helpers.
pub fn uncounted_barrier(rel: &str, toks: &[Tok], maps: &SourceMaps, findings: &mut Vec<Finding>) {
    if rel == BARRIER_MODULE {
        return;
    }
    for i in 0..toks.len() {
        if let Some(m) = method_head(toks, i, &["sync_all", "sync_data"]) {
            emit(
                rel,
                maps,
                "uncounted-barrier",
                m.line,
                "uncounted durability barrier: use lethe_storage::barrier::sync_*_counted \
                 so IoSnapshot.fsyncs stays exact",
                findings,
            );
        }
    }
}

/// `raw-lock`: no `std::sync`/`parking_lot` lock types outside the ranked
/// lock crate.
pub fn raw_lock(rel: &str, toks: &[Tok], maps: &SourceMaps, findings: &mut Vec<Finding>) {
    if rel.starts_with("crates/sync/") || rel.starts_with("crates/lint/") {
        return;
    }
    let banned = |name: &str| matches!(name, "Mutex" | "RwLock" | "Condvar");
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("parking_lot") {
            emit(
                rel,
                maps,
                "raw-lock",
                t.line,
                "raw lock: use the ranked primitives in lethe_sync instead of parking_lot",
                findings,
            );
            continue;
        }
        // `std::sync::X` or `std::sync::{…, X, …}`
        if t.is_ident("std")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("::"))
            && toks.get(i + 2).is_some_and(|s| s.is_ident("sync"))
            && toks.get(i + 3).is_some_and(|p| p.is_punct("::"))
        {
            let hit = match toks.get(i + 4) {
                Some(n) if n.kind == Kind::Ident => banned(&n.text),
                Some(n) if n.kind == Kind::Open(Delim::Brace) => {
                    // first ident of each comma segment inside the brace group
                    let mut depth = 1usize;
                    let mut seg_head = true;
                    let mut any = false;
                    for tok in &toks[i + 5..] {
                        match tok.kind {
                            Kind::Open(Delim::Brace) => depth += 1,
                            Kind::Close(Delim::Brace) => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Kind::Punct if tok.text == "," && depth == 1 => seg_head = true,
                            Kind::Ident if seg_head => {
                                if banned(&tok.text) {
                                    any = true;
                                }
                                seg_head = false;
                            }
                            _ => {}
                        }
                    }
                    any
                }
                _ => false,
            };
            if hit {
                emit(
                    rel,
                    maps,
                    "raw-lock",
                    t.line,
                    "raw lock: use the ranked lethe_sync::{Mutex, RwLock, Condvar} \
                     (deadlock-checked in debug builds) instead of std::sync",
                    findings,
                );
            }
        }
    }
}

/// `no-panic`: storage/lsm non-test code must not have panic paths.
pub fn no_panic(rel: &str, toks: &[Tok], maps: &SourceMaps, findings: &mut Vec<Finding>) {
    if !NO_PANIC_ROOTS.iter().any(|root| rel.starts_with(root)) {
        return;
    }
    const MSG: &str = "panic path in storage/lsm code: return a StorageError, or justify \
                       with a `lint:allow(no-panic): reason` marker";
    for (i, t) in toks.iter().enumerate() {
        // `.unwrap()` (empty args) and `.expect(…)`
        if t.is_punct(".") {
            if let Some(m) = method_head(toks, i, &["unwrap"]) {
                if toks.get(i + 3).is_some_and(|c| c.kind == Kind::Close(Delim::Paren)) {
                    emit(rel, maps, "no-panic", m.line, MSG, findings);
                }
            }
            if let Some(m) = method_head(toks, i, &["expect"]) {
                emit(rel, maps, "no-panic", m.line, MSG, findings);
            }
        }
        // `panic!(…)` and friends
        if t.kind == Kind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|b| b.is_punct("!"))
            && toks.get(i + 2).is_some_and(|o| matches!(o.kind, Kind::Open(_)))
        {
            emit(rel, maps, "no-panic", t.line, MSG, findings);
        }
    }
}

/// `stale-allow`: every `lint:allow` marker must reference a rule that
/// still exists (a marker naming a dead rule is a silent no-op).
pub fn stale_allow(rel: &str, maps: &SourceMaps, findings: &mut Vec<Finding>) {
    // the lint's own sources talk about marker syntax in docs and
    // messages; everything else must reference live rules
    if rel.starts_with("crates/lint/") {
        return;
    }
    for (line, rules) in maps.allow_entries() {
        for rule in rules {
            if !KNOWN_RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: "stale-allow",
                    file: rel.to_string(),
                    line,
                    message: format!(
                        "lint:allow references unknown rule {rule:?}; the marker suppresses \
                         nothing (known rules: {})",
                        KNOWN_RULES.join(", ")
                    ),
                });
            }
        }
    }
}

/// Fail-point sites: `.check("name")` string args with their lines,
/// non-test only.
pub fn kill_point_sites(toks: &[Tok], maps: &SourceMaps) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if method_head(toks, i, &["check"]).is_some() {
            if let Some(s) = toks.get(i + 3).filter(|t| t.kind == Kind::Str) {
                if !maps.is_test_line(s.line) {
                    out.push((s.text.clone(), s.line));
                }
            }
        }
    }
    out
}
