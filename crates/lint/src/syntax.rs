//! Token trees and the item walker.
//!
//! Token trees group the flat token stream by matched delimiters (the
//! rustc/proc-macro idiom). The item walker then recovers the coarse item
//! structure the analyses need: functions (with their body group, return
//! type idents and `impl` context), `#[cfg(test)]` regions tracked
//! *structurally* by the brace group they attach to, and `impl Drop`
//! targets for the lock-order analysis's temporary-drop modelling.

use crate::lexer::{Delim, Kind, Tok};

/// A token tree: a leaf token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single non-delimiter token.
    Leaf(Tok),
    /// A matched `(…)`, `[…]` or `{…}` group.
    Group(Group),
}

/// A delimited group of token trees.
#[derive(Debug, Clone)]
pub struct Group {
    /// Which delimiter pair encloses the group.
    pub delim: Delim,
    /// Line of the opening delimiter.
    pub open_line: u32,
    /// Line of the closing delimiter (== `open_line` if unterminated).
    pub close_line: u32,
    /// The trees between the delimiters.
    pub trees: Vec<Tree>,
}

impl Tree {
    /// The leaf token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one (optionally of a specific delimiter).
    pub fn group(&self, delim: Option<Delim>) -> Option<&Group> {
        match self {
            Tree::Group(g) if delim.is_none() || delim == Some(g.delim) => Some(g),
            _ => None,
        }
    }

    /// True for an identifier leaf with this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(s))
    }

    /// True for a punctuation leaf with this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(s))
    }

    /// Source line of the tree's first token.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }
}

/// Builds token trees from a flat stream. Stray closing delimiters are
/// dropped and unterminated groups close at end of input: half-written
/// code must degrade, not abort the lint.
pub fn build_trees(toks: Vec<Tok>) -> Vec<Tree> {
    // stack of (delim, open_line, children)
    let mut stack: Vec<(Delim, u32, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in toks {
        match tok.kind {
            Kind::Open(d) => {
                stack.push((d, tok.line, std::mem::take(&mut top)));
            }
            Kind::Close(d) => {
                // pop until a matching opener is found (mismatches are
                // treated as the innermost group closing early)
                if stack.iter().any(|(od, _, _)| *od == d) {
                    loop {
                        let (od, open_line, parent) = stack.pop().expect("matching opener");
                        let group = Group {
                            delim: od,
                            open_line,
                            close_line: tok.line,
                            trees: std::mem::replace(&mut top, parent),
                        };
                        top.push(Tree::Group(group));
                        if od == d {
                            break;
                        }
                    }
                }
            }
            _ => top.push(Tree::Leaf(tok)),
        }
    }
    while let Some((od, open_line, parent)) = stack.pop() {
        let close_line = top.last().map_or(open_line, |t| t.line());
        let group =
            Group { delim: od, open_line, close_line, trees: std::mem::replace(&mut top, parent) };
        top.push(Tree::Group(group));
    }
    top
}

/// One function item with everything the analyses need.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (`impl Drop for X` → `X`).
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True when the function is test-only: `#[test]`, `#[cfg(test)]`, or
    /// inside a `#[cfg(test)]` module/impl.
    pub is_test: bool,
    /// Identifier tokens of the return type (`-> Result<PageId, E>` →
    /// `[Result, PageId, E]`); empty for `()`.
    pub ret_idents: Vec<String>,
    /// The body's brace group.
    pub body: Group,
}

/// Items recovered from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every function with a body, in source order.
    pub functions: Vec<Function>,
    /// Line spans (1-based, inclusive) covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// Type names with an `impl Drop` in this file.
    pub drop_impl_types: Vec<String>,
}

/// Walks `trees` (a whole file) and collects items.
pub fn collect_items(trees: &[Tree]) -> FileItems {
    let mut items = FileItems::default();
    walk_items(trees, false, None, &mut items);
    items
}

/// True when an attribute group (`#[…]`'s bracket trees) is `cfg(test)`
/// or `cfg(all(test, …))`-shaped.
fn attr_is_cfg_test(attr: &Group) -> bool {
    let mut it = attr.trees.iter();
    let Some(first) = it.next() else { return false };
    if !first.is_ident("cfg") {
        return false;
    }
    let Some(args) = it.next().and_then(|t| t.group(Some(Delim::Paren))) else { return false };
    contains_ident(&args.trees, "test")
}

/// True when an attribute marks a test function (`#[test]`, `#[bench]`,
/// or a path ending in `::test`).
fn attr_is_test_fn(attr: &Group) -> bool {
    attr.trees
        .iter()
        .any(|t| t.is_ident("test") || t.is_ident("bench"))
        && !attr.trees.first().is_some_and(|t| t.is_ident("cfg"))
}

fn contains_ident(trees: &[Tree], name: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Leaf(tok) => tok.is_ident(name),
        Tree::Group(g) => contains_ident(&g.trees, name),
    })
}

/// Extracts the self-type name of an `impl` header segment (the trees
/// between `impl` and the body brace): the last path segment of the type
/// after `for` (trait impls) or of the first path (inherent impls), with
/// generic parameter lists skipped.
fn impl_type_name(header: &[Tree]) -> Option<String> {
    // slice after the last `for` at angle depth 0, if any
    let mut depth = 0i32;
    let mut after_for: Option<usize> = None;
    for (i, t) in header.iter().enumerate() {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            after_for = Some(i + 1);
        }
    }
    let seg = &header[after_for.unwrap_or(0)..];
    // first path at angle depth 0: idents joined by `::`; keep the last
    let mut depth = 0i32;
    let mut last: Option<String> = None;
    let mut i = 0usize;
    while i < seg.len() {
        match &seg[i] {
            Tree::Leaf(t) if t.is_punct("<") => depth += 1,
            Tree::Leaf(t) if t.is_punct(">") => depth -= 1,
            Tree::Leaf(t) if depth == 0 && t.kind == Kind::Ident => {
                if matches!(t.text.as_str(), "dyn" | "mut" | "const") {
                    i += 1;
                    continue;
                }
                last = Some(t.text.clone());
                // continue through `::` path segments only
                if !seg.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                    break;
                }
                i += 1; // skip the `::`
            }
            Tree::Leaf(t) if depth == 0 && (t.is_punct("&") || t.kind == Kind::Lifetime) => {}
            _ => {}
        }
        i += 1;
    }
    last
}

/// Whether the trait being implemented (the path before `for`) is `Drop`.
fn impl_is_drop(header: &[Tree]) -> bool {
    let mut depth = 0i32;
    for (i, t) in header.iter().enumerate() {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 && t.is_ident("for") {
            return header[..i].iter().any(|t| t.is_ident("Drop"));
        }
    }
    false
}

fn walk_items(trees: &[Tree], in_test: bool, impl_type: Option<&str>, items: &mut FileItems) {
    let mut i = 0usize;
    let mut pending_cfg_test = false;
    let mut pending_test_fn = false;
    let mut pending_line: u32 = 0;

    macro_rules! reset_pending {
        () => {{
            pending_cfg_test = false;
            pending_test_fn = false;
        }};
    }

    while i < trees.len() {
        let t = &trees[i];
        // attributes: `#[…]` accumulates, `#![…]` is skipped
        if t.is_punct("#") {
            if trees.get(i + 1).is_some_and(|n| n.is_punct("!")) {
                i += 3.min(trees.len() - i);
                continue;
            }
            if let Some(attr) = trees.get(i + 1).and_then(|n| n.group(Some(Delim::Bracket))) {
                let cfg_test = attr_is_cfg_test(attr);
                let test_fn = attr_is_test_fn(attr);
                if (cfg_test || test_fn) && !pending_cfg_test && !pending_test_fn {
                    pending_line = t.line();
                }
                pending_cfg_test |= cfg_test;
                pending_test_fn |= test_fn;
                i += 2;
                continue;
            }
        }
        // `mod name { … }`
        if t.is_ident("mod") {
            if let Some(body) = trees.get(i + 2).and_then(|b| b.group(Some(Delim::Brace))) {
                let test = in_test || pending_cfg_test;
                if pending_cfg_test {
                    items.test_spans.push((pending_line, body.close_line));
                }
                walk_items(&body.trees, test, None, items);
                reset_pending!();
                i += 3;
                continue;
            }
            // `mod name;` — nothing to walk
            reset_pending!();
            i += 1;
            continue;
        }
        // `impl … { … }` / `trait Name { … }`
        if t.is_ident("impl") || t.is_ident("trait") {
            let start = i + 1;
            let mut j = start;
            while j < trees.len() && trees[j].group(Some(Delim::Brace)).is_none() {
                // a terminating `;` means a bodyless item (e.g. `trait X;`)
                if trees[j].is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(body) = trees.get(j).and_then(|b| b.group(Some(Delim::Brace))) {
                let header = &trees[start..j];
                let ty = if t.is_ident("trait") {
                    header.first().and_then(|h| h.leaf()).map(|h| h.text.clone())
                } else {
                    impl_type_name(header)
                };
                if t.is_ident("impl") && impl_is_drop(header) {
                    if let Some(ty) = &ty {
                        items.drop_impl_types.push(ty.clone());
                    }
                }
                let test = in_test || pending_cfg_test;
                if pending_cfg_test {
                    items.test_spans.push((pending_line, body.close_line));
                }
                walk_items(&body.trees, test, ty.as_deref(), items);
                reset_pending!();
                i = j + 1;
                continue;
            }
            reset_pending!();
            i = j + 1;
            continue;
        }
        // `fn name(…) -> … { … }`
        if t.is_ident("fn") {
            if let Some((func, next)) = parse_fn(trees, i, in_test, impl_type) {
                let is_test = func.is_test || pending_cfg_test || pending_test_fn;
                if pending_cfg_test || pending_test_fn {
                    let span_start = pending_line.min(func.line).max(1);
                    items.test_spans.push((span_start, func.body.close_line));
                }
                items.functions.push(Function { is_test, ..func });
                reset_pending!();
                i = next;
                continue;
            }
            reset_pending!();
            i += 1;
            continue;
        }
        // any other item: a brace group or `;` consumes the pending attrs
        if let Some(g) = t.group(Some(Delim::Brace)) {
            if pending_cfg_test {
                items.test_spans.push((pending_line, g.close_line));
            }
            reset_pending!();
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            if pending_cfg_test {
                items.test_spans.push((pending_line, t.line()));
            }
            reset_pending!();
        }
        i += 1;
    }
}

/// Parses a `fn` item starting at `trees[at]` (the `fn` keyword). Returns
/// the function and the index after its body. Bodyless declarations
/// (trait methods) return `None`.
fn parse_fn(
    trees: &[Tree],
    at: usize,
    in_test: bool,
    impl_type: Option<&str>,
) -> Option<(Function, usize)> {
    let fn_line = trees[at].line();
    let name = trees.get(at + 1)?.leaf().filter(|t| t.kind == Kind::Ident)?.text.clone();
    // find the argument list: the first paren group at angle depth 0
    let mut j = at + 2;
    let mut depth = 0i32;
    let args_at = loop {
        let t = trees.get(j)?;
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 && t.group(Some(Delim::Paren)).is_some() {
            break j;
        } else if t.is_punct(";") {
            return None;
        }
        j += 1;
    };
    // return type idents (between `->` and the body/where clause)
    let mut ret_idents = Vec::new();
    let mut j = args_at + 1;
    let mut in_ret = false;
    let body_at = loop {
        let t = trees.get(j)?;
        if t.group(Some(Delim::Brace)).is_some() {
            break j;
        }
        if t.is_punct(";") {
            return None; // bodyless declaration
        }
        if t.is_punct("->") {
            in_ret = true;
        } else if t.is_ident("where") {
            in_ret = false;
        } else if in_ret {
            if let Some(tok) = t.leaf() {
                if tok.kind == Kind::Ident {
                    ret_idents.push(tok.text.clone());
                }
            }
        }
        j += 1;
    };
    let body = trees[body_at].group(Some(Delim::Brace))?.clone();
    Some((
        Function {
            name,
            impl_type: impl_type.map(|s| s.to_string()),
            line: fn_line,
            is_test: in_test,
            ret_idents,
            body,
        },
        body_at + 1,
    ))
}
