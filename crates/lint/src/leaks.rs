//! Error-path resource-leak analysis.
//!
//! Two resources in this workspace are acquired in plain code but
//! released by protocol, so the type system cannot see a leak:
//!
//! * **Page ids** — `backend.write_page(…)` hands back a `PageId` the
//!   caller must eventually register in a table's page set or retire via
//!   `reclaim`. If the function can still bail with `?`/`return` after
//!   the write, the id must be covered by a `PageReservation` RAII guard
//!   (constructed before the write on every path) so the error path
//!   retires it.
//! * **Staged batch ids** — `stage_batch(…, Some(id))` parks a 2PC
//!   participant under a pre-allocated id; the id must reach a
//!   `.commit(id)` later in the same function, and any `?`/early return
//!   between stage and commit abandons it (recovery then has to roll it
//!   back — a path that needs an explicit `lint:allow(leak-paths)` with
//!   its reason if intentional).
//!
//! The rule is scoped to non-test code; `crates/lsm` for page writes
//! (the storage backends and cache are the implementation of
//! `write_page`, not callers that own ids).

use std::collections::BTreeSet;

use crate::model::{flatten, Block, Ctx, FlatStmt, Piece};
use crate::{Finding, ParsedFile};

/// Runs the leak checks over the in-scope files.
pub fn check(files: &[&ParsedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let lsm = file.rel.starts_with("crates/lsm/src/");
        for (fj, func) in file.items.functions.iter().enumerate() {
            if func.is_test {
                continue;
            }
            let body = &file.bodies[fj];
            let mut flat = Vec::new();
            flatten(body, false, &mut flat);
            let has_exit = flat.iter().flat_map(|s| s.events.iter()).any(|p| {
                matches!(
                    p,
                    Piece::Question { in_closure: false, .. }
                        | Piece::Return { in_closure: false, .. }
                )
            });
            if lsm && has_exit {
                let mut doms = BTreeSet::new();
                page_walk(body, &file.rel, &mut doms, &mut findings);
            }
            stage_checks(&flat, &file.rel, &mut findings);
        }
    }
    findings
}

/// Dominator walk for page writes: a `PageReservation` constructed in a
/// dominating position covers every later `write_page` in the function.
fn page_walk(
    block: &Block,
    rel: &str,
    doms: &mut BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    for stmt in &block.stmts {
        for piece in &stmt.pieces {
            match piece {
                Piece::Call(c) if !c.in_closure => {
                    if c.method && c.name() == "write_page" && !doms.contains("PageReservation") {
                        findings.push(Finding {
                            rule: "leak-paths",
                            file: rel.to_string(),
                            line: c.line as usize,
                            message: "page id can leak on an error path: this function has \
                                      `?`/early returns, so the write must be covered by a \
                                      dominating reclaim::PageReservation (add the id with \
                                      .add(), .defuse() on success) or carry a \
                                      lint:allow(leak-paths) with the reason"
                                .to_string(),
                        });
                    }
                    for seg in &c.path {
                        doms.insert(seg.clone());
                    }
                }
                Piece::Nested { block: inner, ctx } => match ctx {
                    Ctx::Scope => page_walk(inner, rel, doms, findings),
                    Ctx::Branch => {
                        let mut branch = doms.clone();
                        page_walk(inner, rel, &mut branch, findings);
                    }
                    Ctx::Closure => {}
                },
                _ => {}
            }
        }
    }
}

/// `stage_batch(…, Some(id))` obligations over the flattened statements.
fn stage_checks(flat: &[FlatStmt<'_>], rel: &str, findings: &mut Vec<Finding>) {
    for (si, stmt) in flat.iter().enumerate() {
        for piece in &stmt.events {
            let Piece::Call(c) = piece else { continue };
            if c.in_closure
                || c.name() != "stage_batch"
                || !c.arg_idents.iter().any(|a| a == "Some")
            {
                continue;
            }
            // find the commit that discharges the obligation
            let commit_at = flat[si + 1..].iter().position(|s| {
                s.events.iter().any(|p| match p {
                    Piece::Call(cc) => cc.method && cc.name() == "commit" && !cc.in_closure,
                    _ => false,
                })
            });
            let Some(offset) = commit_at else {
                findings.push(Finding {
                    rule: "leak-paths",
                    file: rel.to_string(),
                    line: c.line as usize,
                    message: "batch staged under a pre-allocated id never reaches its \
                              .commit(id): the id stays parked in the batch log forever \
                              (or until recovery rolls it back)"
                        .to_string(),
                });
                continue;
            };
            // any error exit strictly between stage and commit abandons
            // the staged id to recovery
            let between = &flat[si + 1..si + 1 + offset];
            let exit = between.iter().flat_map(|s| s.events.iter()).find_map(|p| match p {
                Piece::Question { line, in_closure: false } => Some(*line),
                Piece::Return { line, in_closure: false } => Some(*line),
                _ => None,
            });
            if let Some(exit_line) = exit {
                findings.push(Finding {
                    rule: "leak-paths",
                    file: rel.to_string(),
                    line: c.line as usize,
                    message: format!(
                        "error path abandons a staged batch id: the `?`/return on line \
                         {exit_line} can fire between stage_batch(…, Some(id)) and its \
                         .commit(id); if recovery is meant to roll the id back, say so \
                         with lint:allow(leak-paths)"
                    ),
                });
            }
        }
    }
}
