//! Static lock-order analysis.
//!
//! Builds the "may hold A while acquiring B" graph for the ranked locks
//! in `lethe-sync` and reports any acquisition that contradicts the
//! declared `LockRank` order — the compile-time complement of the
//! runtime held-stack detector, covering paths no test executes.
//!
//! Pipeline:
//! 1. The `LockRank` enum (parsed from `crates/sync`) gives the total
//!    order; `with_order` constructors mark ranks where same-rank
//!    nesting is legal (index order is the runtime's job).
//! 2. Every `Mutex`/`RwLock` constructor naming a `LockRank` maps its
//!    binding (struct field / `let` / `static` name) to a rank —
//!    file-local table first, globally-unique names as fallback.
//! 3. A name-resolution call graph (unambiguous names only, same-file
//!    preferred) gives each function its transitive acquire set.
//! 4. An intra-function walk simulates guard liveness: `let`-bound
//!    guards live to end of scope and drop in reverse declaration
//!    order, statement temporaries die at the semicolon, and **tail-
//!    expression temporaries outlive block locals** — which is exactly
//!    the `with_shard` hazard: a guard temporary in the tail expression
//!    is still held when an earlier local's `Drop` impl runs and
//!    acquires a lower-ranked lock.
//! 5. `impl Drop` bodies contribute deferred acquisitions at the point
//!    the value drops, not where it was created.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{Block, Piece};
use crate::{Finding, ParsedFile};

/// The declared rank order plus which ranks permit same-rank nesting.
pub struct RankTable {
    /// Variant name → position in the enum (ascending acquisition order).
    pub order: BTreeMap<String, usize>,
    /// Ranks constructed with `with_order` somewhere in the workspace.
    pub ordered: BTreeSet<String>,
    names: Vec<String>,
}

impl RankTable {
    /// Builds the table from the variant list in declaration order.
    pub fn new(variants: Vec<String>, ordered: BTreeSet<String>) -> RankTable {
        let order = variants.iter().cloned().enumerate().map(|(i, v)| (v, i)).collect();
        RankTable { order, ordered, names: variants }
    }

    fn name(&self, idx: usize) -> &str {
        self.names.get(idx).map(String::as_str).unwrap_or("?")
    }

    fn is_ordered(&self, idx: usize) -> bool {
        self.ordered.contains(self.name(idx))
    }
}

/// Guard type names from `lethe-sync`; a function whose return type
/// mentions one returns a held guard to its caller.
const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FnId(usize, usize); // (file index, function index)

/// Where a deferred acquisition comes from, for the finding message.
enum Why<'a> {
    Direct(&'a str),
    CallInto(&'a str),
    DropOf(&'a str),
}

struct Analysis<'a> {
    files: &'a [&'a ParsedFile],
    ranks: &'a RankTable,
    file_tables: Vec<BTreeMap<String, String>>,
    global_table: BTreeMap<String, Option<String>>,
    name_map: BTreeMap<&'a str, Vec<FnId>>,
    typed_map: BTreeMap<(&'a str, &'a str), Vec<FnId>>,
    trans_acq: BTreeMap<FnId, BTreeSet<usize>>,
    guard_rank: BTreeMap<FnId, usize>,
    droppy: BTreeMap<&'a str, BTreeSet<usize>>,
    edges: BTreeMap<(usize, usize), (String, usize)>,
    findings: Vec<Finding>,
    reported: BTreeSet<(String, usize, usize, usize)>,
}

/// Runs the lock-order analysis over the in-scope files.
pub fn check(files: &[&ParsedFile], ranks: &RankTable) -> Vec<Finding> {
    let mut a = Analysis {
        files,
        ranks,
        file_tables: Vec::new(),
        global_table: BTreeMap::new(),
        name_map: BTreeMap::new(),
        typed_map: BTreeMap::new(),
        trans_acq: BTreeMap::new(),
        guard_rank: BTreeMap::new(),
        droppy: BTreeMap::new(),
        edges: BTreeMap::new(),
        findings: Vec::new(),
        reported: BTreeSet::new(),
    };
    a.build_field_tables();
    a.build_fn_maps();
    a.build_acquire_sets();
    a.build_droppy();
    for (fi, file) in files.iter().enumerate() {
        for (fj, func) in file.items.functions.iter().enumerate() {
            if func.is_test {
                continue;
            }
            let body = &file.bodies[fj];
            let mut held = Vec::new();
            let mut next_id = 0usize;
            a.walk_block(body, FnId(fi, fj), &mut held, &mut next_id);
        }
    }
    a.check_cycles();
    a.findings
}

/// A currently-held guard during the liveness walk.
#[derive(Clone)]
struct Held {
    id: usize,
    rank: usize,
    line: u32,
}

/// What a block-scoped local is, for end-of-scope drop processing.
enum Local {
    Guard { id: usize, name: Option<String> },
    Droppy { ty: String, name: Option<String> },
}

impl<'a> Analysis<'a> {
    fn build_field_tables(&mut self) {
        let mut global: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for file in self.files {
            let mut local: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for ctor in &file.ctors {
                if file.maps.is_test_line(ctor.line) {
                    continue;
                }
                let Some(binding) = &ctor.binding else { continue };
                local.entry(binding.clone()).or_default().insert(ctor.rank.clone());
                global.entry(binding.clone()).or_default().insert(ctor.rank.clone());
            }
            let table = local
                .into_iter()
                .filter_map(|(k, v)| {
                    if v.len() == 1 {
                        Some((k, v.into_iter().next().expect("one rank")))
                    } else {
                        None
                    }
                })
                .collect();
            self.file_tables.push(table);
        }
        self.global_table = global
            .into_iter()
            .map(|(k, v)| {
                let rank =
                    if v.len() == 1 { Some(v.into_iter().next().expect("one rank")) } else { None };
                (k, rank)
            })
            .collect();
    }

    /// Resolves an acquisition receiver to a rank index.
    fn resolve_recv(&self, recv: &str, file_idx: usize) -> Option<usize> {
        if recv.is_empty() {
            return None;
        }
        let rank = self.file_tables[file_idx]
            .get(recv)
            .cloned()
            .or_else(|| self.global_table.get(recv).cloned().flatten())?;
        self.ranks.order.get(&rank).copied()
    }

    fn build_fn_maps(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (fj, func) in file.items.functions.iter().enumerate() {
                let id = FnId(fi, fj);
                self.name_map.entry(&func.name).or_default().push(id);
                if let Some(ty) = &func.impl_type {
                    self.typed_map.entry((ty, &func.name)).or_default().push(id);
                }
            }
        }
    }

    /// Resolves a call to a workspace function. Deliberately conservative
    /// — an unresolved call contributes nothing, a misresolved one
    /// fabricates edges — so only unambiguous shapes resolve:
    ///
    /// * `self.m(…)`       → the enclosing impl type's method, if unique
    /// * `Type::f(…)`      → that type's function, if unique (`Self` maps
    ///   to the enclosing impl type); **no** bare-name fallback
    /// * `module::f(…)`    → globally-unique function name
    /// * `f(…)`            → same-file-unique, else globally-unique name
    ///
    /// Method calls on any receiver other than `self` stay unresolved:
    /// without types, `queue.put(…)` matching some unrelated `fn put`
    /// would poison the graph.
    fn resolve_call(
        &self,
        c: &crate::model::CallEv,
        file_idx: usize,
        enclosing: Option<&str>,
    ) -> Option<FnId> {
        let name = c.path.last()?;
        if c.method {
            if c.recv != "self" {
                return None;
            }
            let cands = self.typed_map.get(&(enclosing?, name.as_str()))?;
            return if cands.len() == 1 { Some(cands[0]) } else { None };
        }
        if c.path.len() >= 2 {
            let seg = &c.path[c.path.len() - 2];
            let type_qualified = seg.chars().next().is_some_and(char::is_uppercase);
            if type_qualified || seg == "Self" {
                let ty = if seg == "Self" { enclosing? } else { seg.as_str() };
                let cands = self.typed_map.get(&(ty, name.as_str()))?;
                return if cands.len() == 1 { Some(cands[0]) } else { None };
            }
            // module-qualified free function: by name, globally unique
            let cands = self.name_map.get(name.as_str())?;
            return if cands.len() == 1 { Some(cands[0]) } else { None };
        }
        let cands = self.name_map.get(name.as_str())?;
        let same_file: Vec<_> = cands.iter().filter(|FnId(fi, _)| *fi == file_idx).collect();
        if same_file.len() == 1 {
            return Some(*same_file[0]);
        }
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        None
    }

    /// Direct acquire sets, then the transitive closure over resolved
    /// calls, then guard-returning ranks.
    fn build_acquire_sets(&mut self) {
        let mut direct: BTreeMap<FnId, BTreeSet<usize>> = BTreeMap::new();
        let mut calls: BTreeMap<FnId, BTreeSet<FnId>> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (fj, func) in file.items.functions.iter().enumerate() {
                let id = FnId(fi, fj);
                let enclosing = func.impl_type.as_deref();
                let mut acq = BTreeSet::new();
                let mut out_calls = BTreeSet::new();
                collect_events(&file.bodies[fj], &mut |piece| match piece {
                    Piece::Acquire { recv, .. } => {
                        if let Some(r) = self.resolve_recv(recv, fi) {
                            acq.insert(r);
                        }
                    }
                    Piece::Call(c) => {
                        if let Some(callee) = self.resolve_call(c, fi, enclosing) {
                            if callee != id {
                                out_calls.insert(callee);
                            }
                        }
                    }
                    _ => {}
                });
                direct.insert(id, acq);
                calls.insert(id, out_calls);
            }
        }
        // fixpoint
        let mut trans = direct.clone();
        loop {
            let mut changed = false;
            let ids: Vec<FnId> = trans.keys().copied().collect();
            for id in ids {
                let mut merged = trans.get(&id).cloned().unwrap_or_default();
                let before = merged.len();
                if let Some(cs) = calls.get(&id) {
                    for c in cs {
                        if let Some(set) = trans.get(c) {
                            merged.extend(set.iter().copied());
                        }
                    }
                }
                if merged.len() != before {
                    trans.insert(id, merged);
                    changed = true;
                } else {
                    trans.insert(id, merged);
                }
            }
            if !changed {
                break;
            }
        }
        // guard-returning functions: return type names a guard and the
        // function's acquire set is a single rank
        for (fi, file) in self.files.iter().enumerate() {
            for (fj, func) in file.items.functions.iter().enumerate() {
                let id = FnId(fi, fj);
                if func.ret_idents.iter().any(|r| GUARD_TYPES.contains(&r.as_str())) {
                    if let Some(set) = trans.get(&id) {
                        if set.len() == 1 {
                            self.guard_rank.insert(id, *set.iter().next().expect("one"));
                        }
                    }
                }
            }
        }
        self.trans_acq = trans;
    }

    fn build_droppy(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for ty in &file.items.drop_impl_types {
                let Some(cands) = self.typed_map.get(&(ty.as_str(), "drop")) else { continue };
                let mut ranks = BTreeSet::new();
                for id in cands {
                    if id.0 == fi {
                        if let Some(set) = self.trans_acq.get(id) {
                            ranks.extend(set.iter().copied());
                        }
                    }
                }
                if !ranks.is_empty() {
                    self.droppy.entry(ty).or_default().extend(ranks);
                }
            }
        }
    }

    /// Records one held→acquired pair and reports violations.
    fn check_edge(&mut self, rel: &str, line: u32, held: &Held, to: usize, why: &Why<'_>) {
        let from = held.rank;
        if from != to {
            self.edges.entry((from, to)).or_insert_with(|| (rel.to_string(), line as usize));
        }
        let bad_inversion = to < from;
        let bad_same = to == from && !self.ranks.is_ordered(to);
        if !bad_inversion && !bad_same {
            return;
        }
        if !self.reported.insert((rel.to_string(), line as usize, from, to)) {
            return;
        }
        let via = match why {
            Why::Direct(recv) => format!("via `{recv}`"),
            Why::CallInto(callee) => format!("inside the call to `{callee}`"),
            Why::DropOf(ty) => format!(
                "deferred to `Drop for {ty}` at end of scope — note tail-expression \
                 temporaries outlive block locals"
            ),
        };
        let msg = if bad_same {
            format!(
                "same-rank reacquisition of {rank} while already held (line {hl}), {via}; \
                 only `with_order` locks may nest at equal rank",
                rank = self.ranks.name(to),
                hl = held.line,
            )
        } else {
            format!(
                "lock-order inversion: acquiring {to_n} {via} while holding {from_n} \
                 (acquired line {hl}); the declared order is {to_n} < {from_n}",
                to_n = self.ranks.name(to),
                from_n = self.ranks.name(from),
                hl = held.line,
            )
        };
        self.findings.push(Finding {
            rule: "lock-order",
            file: rel.to_string(),
            line: line as usize,
            message: msg,
        });
    }

    fn walk_block(&mut self, block: &Block, fun: FnId, held: &mut Vec<Held>, next_id: &mut usize) {
        let rel = self.files[fun.0].rel.clone();
        let mut locals: Vec<Local> = Vec::new();
        let mut tail_ids: Vec<usize> = Vec::new();
        for stmt in &block.stmts {
            let mut stmt_temp_ids: Vec<usize> = Vec::new();
            let mut stmt_droppy: Vec<String> = Vec::new();
            for piece in &stmt.pieces {
                match piece {
                    Piece::Acquire { recv, line, nested, in_closure, chained } => {
                        let Some(r) = self.resolve_recv(recv, fun.0) else { continue };
                        for h in held.clone() {
                            self.check_edge(&rel, *line, &h, r, &Why::Direct(recv));
                        }
                        let id = *next_id;
                        *next_id += 1;
                        let tail_temp = stmt.is_tail && *nested;
                        held.push(Held { id, rank: r, line: *line });
                        if *chained {
                            // `x.read().len()` — the guard is a temporary
                            // even when the result is `let`-bound
                            stmt_temp_ids.push(id);
                        } else if stmt.let_name.is_some() && (!*nested || *in_closure) {
                            locals.push(Local::Guard { id, name: stmt.let_name.clone() });
                        } else if tail_temp {
                            tail_ids.push(id);
                        } else {
                            stmt_temp_ids.push(id);
                        }
                    }
                    Piece::Call(c) => {
                        let enclosing =
                            self.files[fun.0].items.functions[fun.1].impl_type.clone();
                        let Some(callee) = self.resolve_call(c, fun.0, enclosing.as_deref())
                        else {
                            continue;
                        };
                        let callee_name =
                            self.files[callee.0].items.functions[callee.1].name.clone();
                        if let Some(set) = self.trans_acq.get(&callee).cloned() {
                            for r in set {
                                for h in held.clone() {
                                    self.check_edge(&rel, c.line, &h, r, &Why::CallInto(&callee_name));
                                }
                            }
                        }
                        if let Some(gr) = self.guard_rank.get(&callee).copied() {
                            let id = *next_id;
                            *next_id += 1;
                            let tail_temp = stmt.is_tail && c.nested;
                            held.push(Held { id, rank: gr, line: c.line });
                            if stmt.let_name.is_some() && !c.nested {
                                locals.push(Local::Guard { id, name: stmt.let_name.clone() });
                            } else if tail_temp {
                                tail_ids.push(id);
                            } else {
                                stmt_temp_ids.push(id);
                            }
                        } else if let Some(ty) = self.droppy_return(callee) {
                            if stmt.let_name.is_some() && !c.nested {
                                locals.push(Local::Droppy { ty, name: stmt.let_name.clone() });
                            } else if !stmt.is_tail || c.nested {
                                // a returned droppy value escapes; a
                                // temporary drops at end of statement
                                stmt_droppy.push(ty);
                            }
                        }
                    }
                    Piece::DropOf { name, line } => {
                        // explicit drop releases a named guard, or runs a
                        // named droppy local's Drop right here
                        if let Some(pos) = locals.iter().rposition(|l| match l {
                            Local::Guard { name: n, .. } | Local::Droppy { name: n, .. } => {
                                n.as_deref() == Some(name)
                            }
                        }) {
                            match locals.remove(pos) {
                                Local::Guard { id, .. } => held.retain(|h| h.id != id),
                                Local::Droppy { ty, .. } => {
                                    self.run_drop(&rel, *line, &ty, held);
                                }
                            }
                        }
                    }
                    Piece::Nested { block: inner, .. } => {
                        // a plain `if`/`while` drops its condition
                        // temporaries before the body runs; only `match` /
                        // `if let` scrutinee temporaries extend through
                        if !stmt.extends_temps {
                            held.retain(|h| !stmt_temp_ids.contains(&h.id));
                            stmt_temp_ids.clear();
                            for ty in stmt_droppy.drain(..) {
                                self.run_drop(&rel, stmt.line, &ty, held);
                            }
                        }
                        // closures are walked inline: guards captured or
                        // produced inside argument closures behave like
                        // part of the enclosing statement
                        self.walk_block(inner, fun, held, next_id);
                    }
                    Piece::Question { .. } | Piece::Return { .. } => {}
                }
            }
            // end of statement: temporaries die (no Drop impl on guards
            // beyond releasing), then droppy temporaries run Drop
            held.retain(|h| !stmt_temp_ids.contains(&h.id));
            for ty in stmt_droppy {
                self.run_drop(&rel, stmt.line, &ty, held);
            }
        }
        // end of block: locals drop in reverse declaration order, then
        // tail-expression temporaries
        while let Some(local) = locals.pop() {
            match local {
                Local::Guard { id, .. } => held.retain(|h| h.id != id),
                Local::Droppy { ty, .. } => {
                    let line = block.stmts.last().map_or(0, |s| s.line);
                    self.run_drop(&rel, line, &ty, held);
                }
            }
        }
        held.retain(|h| !tail_ids.contains(&h.id));
    }

    /// Applies a type's `Drop` acquisitions against the currently-held
    /// guards.
    fn run_drop(&mut self, rel: &str, line: u32, ty: &str, held: &[Held]) {
        let Some(ranks) = self.droppy.get(ty).cloned() else { return };
        for r in ranks {
            for h in held {
                self.check_edge(rel, line, h, r, &Why::DropOf(ty));
            }
        }
    }

    fn droppy_return(&self, id: FnId) -> Option<String> {
        let func = &self.files[id.0].items.functions[id.1];
        func.ret_idents.iter().find(|r| self.droppy.contains_key(r.as_str())).cloned()
    }

    /// DFS cycle detection over the recorded edge graph (belt and braces:
    /// with a total order and inversion checks, a cycle should be
    /// impossible — but the rule's contract says "fail on any cycle").
    fn check_cycles(&mut self) {
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (from, to) in self.edges.keys() {
            if from != to {
                adj.entry(*from).or_default().push(*to);
            }
        }
        let nodes: Vec<usize> = adj.keys().copied().collect();
        let mut state: BTreeMap<usize, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
        for n in nodes {
            if state.contains_key(&n) {
                continue;
            }
            let mut stack = vec![(n, 0usize)];
            state.insert(n, 1);
            while let Some(&(node, next)) = stack.last() {
                let succs = adj.get(&node).cloned().unwrap_or_default();
                if next >= succs.len() {
                    state.insert(node, 2);
                    stack.pop();
                    continue;
                }
                let succ = succs[next];
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                match state.get(&succ) {
                    Some(1) => {
                        let (file, line) =
                            self.edges.get(&(node, succ)).cloned().unwrap_or_default();
                        let cycle: Vec<String> = stack
                            .iter()
                            .map(|&(n, _)| self.ranks.name(n).to_string())
                            .collect();
                        self.findings.push(Finding {
                            rule: "lock-order",
                            file,
                            line,
                            message: format!(
                                "cycle in the may-hold-while-acquiring graph: {} -> {}",
                                cycle.join(" -> "),
                                self.ranks.name(succ)
                            ),
                        });
                        return;
                    }
                    Some(_) => {}
                    None => {
                        state.insert(succ, 1);
                        stack.push((succ, 0));
                    }
                }
            }
        }
    }
}

/// Visits every event piece in a block, closures included.
fn collect_events<'b>(block: &'b Block, f: &mut impl FnMut(&'b Piece)) {
    for stmt in &block.stmts {
        for piece in &stmt.pieces {
            match piece {
                Piece::Nested { block: b, ctx: _ } => collect_events(b, f),
                other => f(other),
            }
        }
    }
}
