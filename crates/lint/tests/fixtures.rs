//! Fixture corpus for every lint rule: each `fixtures/<rule>/fail.rs` must
//! produce at least one finding of exactly that rule, and each
//! `fixtures/<rule>/pass.rs` must produce none. The fixtures double as
//! documentation of what each rule accepts and rejects.

use lethe_lint::{check_file, check_kill_points, parse_registry, rule_unsafe_hygiene, Finding};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture(rule: &str, which: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("fixtures/{rule}/{which}.rs"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Virtual workspace-relative path placing a fixture under the crate the
/// rule targets.
fn virtual_path(rule: &str) -> &'static str {
    match rule {
        "raw-drop-page" => "crates/lsm/src/fixture.rs",
        "uncounted-barrier" => "crates/storage/src/fixture.rs",
        "raw-lock" => "crates/core/src/fixture.rs",
        "no-panic" => "crates/storage/src/fixture.rs",
        other => panic!("no virtual path for rule {other}"),
    }
}

fn run_rule(rule: &str, which: &str) -> Vec<Finding> {
    check_file(virtual_path(rule), &fixture(rule, which))
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn every_code_rule_fails_its_fail_fixture_and_passes_its_pass_fixture() {
    for rule in ["raw-drop-page", "uncounted-barrier", "raw-lock", "no-panic"] {
        let failures = run_rule(rule, "fail");
        assert!(!failures.is_empty(), "{rule}: fail fixture produced no findings");
        let passes = run_rule(rule, "pass");
        assert!(passes.is_empty(), "{rule}: pass fixture flagged: {passes:?}");
    }
}

#[test]
fn fail_fixtures_report_each_violation_site() {
    assert_eq!(run_rule("uncounted-barrier", "fail").len(), 2, "sync_all and sync_data");
    assert_eq!(run_rule("no-panic", "fail").len(), 3, "unwrap, expect, unimplemented");
    assert!(run_rule("raw-lock", "fail").len() >= 3, "parking_lot + 2 std::sync sites");
}

#[test]
fn unsafe_hygiene_checks_crate_roots_only() {
    let fail = fixture("unsafe-hygiene", "fail");
    let pass = fixture("unsafe-hygiene", "pass");
    assert!(rule_unsafe_hygiene("crates/storage/src/lib.rs", &fail).is_some());
    assert!(rule_unsafe_hygiene("crates/lint/src/main.rs", &fail).is_some());
    assert!(rule_unsafe_hygiene("src/lib.rs", &fail).is_some());
    assert!(rule_unsafe_hygiene("crates/storage/src/lib.rs", &pass).is_none());
    // a non-root module never needs the attribute
    assert!(rule_unsafe_hygiene("crates/storage/src/wal.rs", &fail).is_none());
}

#[test]
fn drop_page_choke_point_files_are_exempt() {
    let fail = fixture("raw-drop-page", "fail");
    assert!(check_file("crates/lsm/src/reclaim.rs", &fail)
        .iter()
        .all(|f| f.rule != "raw-drop-page"));
    assert!(check_file("crates/storage/src/cache.rs", &fail)
        .iter()
        .all(|f| f.rule != "raw-drop-page"));
}

#[test]
fn barrier_module_is_exempt_from_uncounted_barrier() {
    let fail = fixture("uncounted-barrier", "fail");
    assert!(check_file("crates/storage/src/barrier.rs", &fail)
        .iter()
        .all(|f| f.rule != "uncounted-barrier"));
}

#[test]
fn allow_marker_without_a_reason_is_ignored() {
    let src = "fn f(v: Option<u64>) -> u64 {\n    // lint:allow(no-panic)\n    v.unwrap()\n}\n";
    let findings = check_file("crates/storage/src/fixture.rs", src);
    assert_eq!(findings.len(), 1, "a reasonless marker must not suppress: {findings:?}");
    let src =
        "fn f(v: Option<u64>) -> u64 {\n    // lint:allow(no-panic): checked\n    v.unwrap()\n}\n";
    assert!(check_file("crates/storage/src/fixture.rs", src).is_empty());
}

#[test]
fn patterns_inside_strings_and_comments_do_not_fire() {
    let src = concat!(
        "fn f() -> &'static str {\n",
        "    // calling .unwrap() here would be wrong\n",
        "    /* parking_lot::Mutex is banned */\n",
        "    \"error: .sync_all() and backend.drop_page(id) and panic!(now)\"\n",
        "}\n",
    );
    for rel in ["crates/storage/src/fixture.rs", "crates/core/src/fixture.rs"] {
        let findings = check_file(rel, src);
        assert!(findings.is_empty(), "{rel}: {findings:?}");
    }
}

#[test]
fn kill_point_cross_check_flags_both_directions() {
    let mut sites = BTreeMap::new();
    sites.insert("wal.append".to_string(), ("crates/storage/src/wal.rs".to_string(), 10));
    sites.insert("wal.orphan".to_string(), ("crates/storage/src/wal.rs".to_string(), 20));
    let registry_src = "\
// lint:kill-points-registry:begin
const KILL_POINTS: &[&str] = &[\"wal.append\", \"manifest.ghost\"];
// lint:kill-points-registry:end
";
    let registry = parse_registry(registry_src);
    assert_eq!(registry.len(), 2);
    let findings = check_kill_points(&sites, &registry, "tests/crash_recovery.rs");
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("wal.orphan")), "unregistered site");
    assert!(findings.iter().any(|f| f.message.contains("manifest.ghost")), "dead registry entry");
}

#[test]
fn the_real_tree_is_clean() {
    // the lint must hold on the workspace that ships it (CI runs the binary;
    // this keeps `cargo test -p lethe-lint` self-contained)
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lethe_lint::run(&root);
    assert!(findings.is_empty(), "lethe-lint found violations in the tree:\n{findings:#?}");
}
