//! Fixture tests for the workspace-level analyses introduced by lint v2:
//! `lock-order`, `durability-order`, `leak-paths`, plus the lexer's
//! masking regression fixtures and the `stale-allow` cross-check.
//!
//! Each fail fixture seeds an exact number of violations; the tests
//! assert the analysis finds *every* seeded site and nothing on the
//! matching pass fixture.

use std::fs;
use std::path::PathBuf;

fn fixture(rule: &str, which: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(which);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the workspace analyses over a single virtual file and keeps
/// only the findings for `rule`.
fn workspace_rule(virtual_path: &str, rule: &str, src: &str) -> Vec<lethe_lint::Finding> {
    lethe_lint::check_workspace(&[(virtual_path.to_string(), src.to_string())])
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

/// 1-based line of the `n`-th occurrence (0-based `n`) of `needle`.
fn nth_line_of(src: &str, needle: &str, n: usize) -> usize {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .map(|(i, _)| i + 1)
        .nth(n)
        .unwrap_or_else(|| panic!("occurrence {n} of {needle:?} not found"))
}

// ---------------------------------------------------------------- lock-order

#[test]
fn lock_order_fail_fixture_reports_each_seeded_inversion() {
    let src = fixture("lock-order", "fail.rs");
    let findings = workspace_rule("crates/core/src/fixture.rs", "lock-order", &src);
    assert_eq!(
        findings.len(),
        3,
        "expected the three transplanted inversions, got: {findings:#?}"
    );

    // 1. direct inversion: engine acquired while the queue state is held
    let direct = findings
        .iter()
        .find(|f| f.line == nth_line_of(&src, "let _engine = self.engine.lock();", 0))
        .expect("direct engine-under-queue-state inversion");
    assert!(direct.message.contains("lock-order inversion"), "{direct}");
    assert!(direct.message.contains("Engine"), "{direct}");
    assert!(direct.message.contains("CommitQueueState"), "{direct}");

    // 2. inversion one call deep, visible only through the call graph
    let through_call = findings
        .iter()
        .find(|f| f.message.contains("inside the call to"))
        .expect("worker-state-under-engine inversion through wake_worker()");
    assert!(through_call.message.contains("wake_worker"), "{through_call}");
    assert!(through_call.message.contains("WorkerState"), "{through_call}");

    // 3. the `with_shard` tail-temporary hazard (the PR 7 deadlock class):
    // PauseGuard's Drop locks the worker state while the tail expression's
    // engine guard is still alive
    let tail_temp = findings
        .iter()
        .find(|f| f.message.contains("Drop for PauseGuard"))
        .expect("with_shard tail-temporary hazard");
    assert!(
        tail_temp.message.contains("tail-expression temporaries"),
        "{tail_temp}"
    );
}

#[test]
fn lock_order_pass_fixture_is_clean() {
    let src = fixture("lock-order", "pass.rs");
    let findings =
        lethe_lint::check_workspace(&[("crates/core/src/fixture.rs".to_string(), src)]);
    assert!(findings.is_empty(), "pass fixture must be clean: {findings:#?}");
}

// ----------------------------------------------------------- durability-order

#[test]
fn durability_order_fail_fixture_reports_each_seeded_violation() {
    let src = fixture("durability-order", "fail.rs");
    let findings = workspace_rule("crates/storage/src/fixture.rs", "durability-order", &src);
    assert_eq!(
        findings.len(),
        5,
        "expected the five seeded protocol violations, got: {findings:#?}"
    );

    let with = |needle: &str| findings.iter().filter(|f| f.message.contains(needle)).count();
    assert_eq!(with("without a dominating counted barrier"), 1);
    assert_eq!(with("no directory fsync afterwards"), 1);
    assert_eq!(with("truncate_prefix without a dominating manifest-edit"), 2);
    assert_eq!(with("is not adjacent to the durable"), 1);

    // the unbarriered rename is the first rename in the file; the branchy
    // commit case is the second truncate
    let rename_line = nth_line_of(&src, "std::fs::rename(tmp, dst)?;", 0);
    assert!(findings.iter().any(|f| f.line == rename_line));
    let branchy_truncate = nth_line_of(&src, "self.wal.truncate_prefix(upto)?;", 1);
    assert!(findings.iter().any(|f| f.line == branchy_truncate));
}

#[test]
fn durability_order_pass_fixture_is_clean() {
    let src = fixture("durability-order", "pass.rs");
    let findings =
        lethe_lint::check_workspace(&[("crates/storage/src/fixture.rs".to_string(), src)]);
    assert!(findings.is_empty(), "pass fixture must be clean: {findings:#?}");
}

// ---------------------------------------------------------------- leak-paths

#[test]
fn leak_paths_fail_fixture_reports_each_seeded_leak() {
    let src = fixture("leak-paths", "fail.rs");
    let findings = workspace_rule("crates/lsm/src/fixture.rs", "leak-paths", &src);
    assert_eq!(
        findings.len(),
        3,
        "expected the three seeded leaks, got: {findings:#?}"
    );

    let with = |needle: &str| findings.iter().filter(|f| f.message.contains(needle)).count();
    assert_eq!(with("page id can leak on an error path"), 1);
    assert_eq!(with("never reaches its"), 1);
    assert_eq!(with("error path abandons a staged batch id"), 1);

    let write_line = nth_line_of(&src, "backend.write_page", 0);
    assert!(findings.iter().any(|f| f.line == write_line));
}

#[test]
fn leak_paths_pass_fixture_is_clean() {
    let src = fixture("leak-paths", "pass.rs");
    let findings =
        lethe_lint::check_workspace(&[("crates/lsm/src/fixture.rs".to_string(), src)]);
    assert!(findings.is_empty(), "pass fixture must be clean: {findings:#?}");
}

#[test]
fn allow_marker_suppresses_a_workspace_finding() {
    // the 2PC stage site in shard.rs uses exactly this shape: recovery
    // rolls aborted ids back, so the stage-never-commits finding is
    // acknowledged with a reasoned marker directly above the call
    let src = "type Result<T> = std::io::Result<T>;\n\
               pub struct Tree;\n\
               pub fn stage_only(tree: &mut Tree, slice: &[u8], id: u64) -> Result<()> {\n\
                   // lint:allow(leak-paths): recovery rolls aborted ids back\n\
                   tree.stage_batch(slice, Some(id))?;\n\
                   Ok(())\n\
               }\n";
    let findings =
        lethe_lint::check_workspace(&[("crates/lsm/src/fixture.rs".to_string(), src.to_string())]);
    assert!(findings.is_empty(), "reasoned allow must suppress: {findings:#?}");

    // without the marker the same code is a violation
    let bare = src.replace("// lint:allow(leak-paths): recovery rolls aborted ids back\n", "");
    let findings =
        lethe_lint::check_workspace(&[("crates/lsm/src/fixture.rs".to_string(), bare)]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "leak-paths");
}

// ------------------------------------------------------------------- masking

#[test]
fn masking_fail_fixture_fires_after_raw_strings_and_nested_comments() {
    let src = fixture("masking", "fail.rs");
    let findings = lethe_lint::check_file("crates/storage/src/fixture.rs", &src);
    let barrier: Vec<_> = findings.iter().filter(|f| f.rule == "uncounted-barrier").collect();
    assert_eq!(barrier.len(), 2, "{findings:#?}");
    assert!(barrier.iter().any(|f| f.line == nth_line_of(&src, "file.sync_all()?", 0)));
    assert!(barrier.iter().any(|f| f.line == nth_line_of(&src, "file.sync_data()?", 0)));
}

#[test]
fn masking_pass_fixture_is_clean_under_every_rule() {
    let src = fixture("masking", "pass.rs");
    for root in ["crates/storage/src/fixture.rs", "crates/lsm/src/fixture.rs"] {
        let findings = lethe_lint::check_file(root, &src);
        assert!(findings.is_empty(), "{root}: {findings:#?}");
        let findings = lethe_lint::check_workspace(&[(root.to_string(), src.clone())]);
        assert!(findings.is_empty(), "{root}: {findings:#?}");
    }
}

// --------------------------------------------------------------- stale-allow

#[test]
fn stale_allow_flags_markers_for_unknown_rules_only() {
    let src = "// lint:allow(lock-order): known rule, fine\n\
               // lint:allow(durability-order): known rule, fine\n\
               // lint:allow(leak-paths): known rule, fine\n\
               // lint:allow(made-up-rule): suppresses nothing\n\
               pub fn f() {}\n";
    let findings = lethe_lint::check_file("crates/core/src/x.rs", src);
    let stale: Vec<_> = findings.iter().filter(|f| f.rule == "stale-allow").collect();
    assert_eq!(stale.len(), 1, "{findings:#?}");
    assert_eq!(stale[0].line, 4);
    assert!(stale[0].message.contains("made-up-rule"), "{}", stale[0]);
}

// -------------------------------------------------------------------- output

#[test]
fn json_output_is_well_formed_and_escaped() {
    let src = fixture("masking", "fail.rs");
    let findings = lethe_lint::check_file("crates/storage/src/fixture.rs", &src);
    let json = lethe_lint::to_json(&findings);
    assert!(json.starts_with("{\"count\":2,"), "{json}");
    assert!(json.contains("\"rule\":\"uncounted-barrier\""), "{json}");
    assert!(json.contains("\"file\":\"crates/storage/src/fixture.rs\""), "{json}");
    assert!(json.ends_with("]}"), "{json}");

    let quoted = vec![lethe_lint::Finding {
        rule: "no-panic",
        file: "a.rs".to_string(),
        line: 1,
        message: "contains \"quotes\" and a \\ backslash".to_string(),
    }];
    let json = lethe_lint::to_json(&quoted);
    assert!(
        json.contains("contains \\\"quotes\\\" and a \\\\ backslash"),
        "{json}"
    );
}
