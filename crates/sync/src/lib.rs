//! # lethe-sync
//!
//! Ranked lock primitives for the Lethe workspace.
//!
//! Every blocking lock in the engine is one of the wrappers in this crate —
//! [`Mutex`], [`RwLock`] and [`Condvar`] — constructed with a static
//! [`LockRank`]. The ranks form a total order that mirrors the engine's
//! *legal acquisition order*: a thread may only acquire a lock whose rank is
//! **strictly greater** than the rank of every lock it already holds. Locks
//! that share a rank (the per-shard engine locks taken together by a
//! cross-shard two-phase commit) carry an *order index* and must be acquired
//! in strictly ascending index order.
//!
//! In debug builds (`cfg(debug_assertions)`) each thread maintains a stack
//! of held locks and every acquisition is checked against it; a violation —
//! the shape of every lock-order deadlock — **panics immediately** with both
//! ranks and the full held chain, turning a once-a-month hung stress test
//! into a deterministic unit-test failure. Release builds compile the
//! tracking away entirely: the wrappers are plain `std::sync` primitives
//! with `parking_lot`-style non-poisoning guards (a poisoned lock — a panic
//! while holding the guard — is a bug in its own right, not a reason to
//! wedge every other thread, so guards are recovered, never propagated).
//!
//! The repo-specific lint (`cargo run -p lethe-lint`) bans direct
//! `std::sync` / `parking_lot` lock construction everywhere outside this
//! crate, so the rank table below is, by construction, the complete lock
//! inventory of the engine. See `ARCHITECTURE.md` § "Correctness tooling"
//! for the rank-order diagram and how to add a rank.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(debug_assertions)]
use std::cell::RefCell;
use std::fmt;

/// The static acquisition order of every lock in the Lethe workspace,
/// lowest rank acquired first.
///
/// The variants are declared in ascending rank order; the derived `Ord` is
/// the rank comparison. A thread holding a lock of rank `R` may only
/// acquire locks of rank strictly greater than `R` (same-rank acquisition
/// is legal only for locks constructed with [`Mutex::with_order`] /
/// [`RwLock::with_order`], in strictly ascending order-index order).
///
/// To add a lock: pick the point in this list where the new lock is
/// acquired relative to the existing ones, add a variant there, and
/// construct the lock with it. The debug-build checker and the
/// concurrency-stress suites will catch a misplaced rank as a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum LockRank {
    /// Test-harness oracle state (`lethe-workload` concurrent drivers):
    /// held around whole engine calls, so it must sort below every engine
    /// lock.
    OracleState,
    /// A shard maintenance worker's coordination state
    /// (`lethe_core::compactor`). Never held across an engine-lock
    /// acquisition — the worker drops it before running a job — but ranked
    /// below `Engine` so a future "wake the worker while applying" path
    /// would be flagged rather than silently ordered.
    WorkerState,
    /// A shard's engine lock (`lethe_core::shard`). Constructed with the
    /// shard index as its order index: cross-shard two-phase commit holds
    /// several at once and must take them in ascending shard order.
    Engine,
    /// The store-wide live-snapshot registry (`lethe_core::shard`): locked
    /// while every engine lock is held when a snapshot is created, and with
    /// no locks held when a handle is dropped or expired.
    SnapshotRegistry,
    /// A snapshot tracker's live-seqnum map (`lethe_lsm::snapshot`): locked
    /// only on snapshot register/release/expire. Hot-path queries (GC
    /// gating inside compaction planning) read its atomic mirrors and take
    /// no lock at all.
    SnapshotTracker,
    /// A shard's group-commit queue state (`lethe_core::shard`): the leader
    /// re-locks it under the engine lock to drain convoys.
    CommitQueueState,
    /// A group-commit outcome slot (`lethe_core::shard`): filled by the
    /// leader under the engine lock, read by a follower under the queue
    /// state lock.
    CommitSlot,
    /// The active (mutable) memtable (`lethe_lsm::tree`).
    MemtableActive,
    /// The frozen (immutable, flush-pending) memtable slot
    /// (`lethe_lsm::tree`): swapped while the active guard is held.
    MemtableFrozen,
    /// The current-version pointer of a version set (`lethe_lsm::version`).
    VersionCurrent,
    /// A version set's retired-table garbage list (`lethe_lsm::version`).
    VersionGarbage,
    /// A version set's cross-generation page refcounts
    /// (`lethe_lsm::version`): taken under the garbage lock during
    /// reclamation.
    PageRefs,
    /// A write-ahead log's file handle (`lethe_storage::wal`, both the
    /// in-memory record list and the durable file lock).
    Wal,
    /// The store-wide batch-commit log's file handle
    /// (`lethe_storage::batchlog`), locked at the 2PC commit point while
    /// every involved engine lock is held.
    BatchLogFile,
    /// The batch-commit log's committed-id set (`lethe_storage::batchlog`),
    /// updated under its file lock.
    BatchLogIds,
    /// One stripe of the shared block cache (`lethe_storage::cache`). A
    /// leaf in practice (probe and insert are separate acquisitions), but
    /// ranked below the device locks it fronts.
    CacheStripe,
    /// The page map of the in-memory simulated device
    /// (`lethe_storage::backend::InMemoryBackend`).
    BackendPages,
    /// The append handle of the file-backed device
    /// (`lethe_storage::backend::FileBackend`).
    BackendFile,
    /// The page index of the file-backed device, taken under the append
    /// handle on the write path.
    BackendIndex,
    /// The pinned read handle of the file-backed device, swapped under the
    /// index write lock when the data file is compacted.
    BackendReadHandle,
    /// The global cursor-serialisation fallback for platforms with no
    /// positional-read API (`lethe_storage::backend`).
    FallbackCursor,
    /// A crash fail point's fired-site record (`lethe_storage::failpoint`):
    /// touched inside arbitrarily deep durable paths, so it ranks above
    /// everything.
    FailPointState,
}

// ---------------------------------------------------------------------------
// debug-build held-lock tracking
// ---------------------------------------------------------------------------

/// One acquisition a thread currently holds (debug builds only).
#[cfg(debug_assertions)]
#[derive(Clone, Copy)]
struct Held {
    token: u64,
    rank: LockRank,
    order: u64,
}

#[cfg(debug_assertions)]
thread_local! {
    /// The calling thread's held locks in acquisition order. Pushes always
    /// append (acquisition checks keep `(rank, order)` ascending); releases
    /// may remove from the middle — guards can legally drop out of LIFO
    /// order (e.g. the 2PC guard vector drops engines in ascending shard
    /// order).
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Validates an acquisition of `(rank, order)` against the calling thread's
/// held stack and records it. Returns the token to release with.
#[cfg(debug_assertions)]
fn track_acquire(rank: LockRank, order: u64, ordered: bool) -> u64 {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(top) = held.last() {
            let legal = rank > top.rank
                || (rank == top.rank && ordered && order > top.order);
            if !legal {
                let chain: Vec<String> = held
                    .iter()
                    .map(|h| format!("{:?}(order {})", h.rank, h.order))
                    .collect();
                panic!(
                    "lock-rank inversion: acquiring {rank:?}(order {order}) while holding \
                     {top_rank:?}(order {top_order}) — held chain: [{chain}]. Locks must be \
                     acquired in ascending LockRank order (same rank only with strictly \
                     ascending order index, e.g. engine locks in ascending shard order); \
                     see lethe-sync's LockRank for the full table.",
                    top_rank = top.rank,
                    top_order = top.order,
                    chain = chain.join(" -> "),
                );
            }
        }
        let token = NEXT_TOKEN.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        });
        held.push(Held { token, rank, order });
        token
    })
}

/// Removes the acquisition identified by `token` from the held stack.
#[cfg(debug_assertions)]
fn track_release(token: u64) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.token == token) {
            held.remove(pos);
        }
    });
}

/// RAII record of one tracked acquisition; releases on drop.
#[cfg(debug_assertions)]
#[derive(Debug)]
struct Tracked {
    token: u64,
}

#[cfg(debug_assertions)]
impl Tracked {
    fn acquire(rank: LockRank, order: u64, ordered: bool) -> Tracked {
        Tracked { token: track_acquire(rank, order, ordered) }
    }
}

#[cfg(debug_assertions)]
impl Drop for Tracked {
    fn drop(&mut self) {
        track_release(self.token);
    }
}

/// Zero-sized stand-in in release builds.
#[cfg(not(debug_assertions))]
#[derive(Debug)]
struct Tracked;

#[cfg(not(debug_assertions))]
impl Tracked {
    #[inline(always)]
    fn acquire(_rank: LockRank, _order: u64, _ordered: bool) -> Tracked {
        Tracked
    }
}

/// Number of locks the calling thread currently holds (0 in release
/// builds, where tracking is compiled away). Diagnostic aid for tests.
pub fn held_lock_count() -> usize {
    #[cfg(debug_assertions)]
    {
        HELD.with(|held| held.borrow().len())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A ranked mutual-exclusion lock with a non-poisoning `lock()` API.
///
/// Construct with [`Mutex::new`] (rank only; same-rank nesting always
/// illegal) or [`Mutex::with_order`] (rank + order index; same-rank nesting
/// legal in ascending index order). Debug builds panic on rank inversion.
pub struct Mutex<T: ?Sized> {
    rank: LockRank,
    order: u64,
    ordered: bool,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases (and untracks) on drop.
#[must_use = "if unused the Mutex will immediately unlock"]
pub struct MutexGuard<'a, T: ?Sized> {
    // field order is the drop order: release the OS lock first, then pop
    // the rank-tracking entry
    inner: std::sync::MutexGuard<'a, T>,
    _tracked: Tracked,
}

impl<T> Mutex<T> {
    /// Creates a mutex of rank `rank` protecting `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Mutex { rank, order: 0, ordered: false, inner: std::sync::Mutex::new(value) }
    }

    /// Creates a mutex of rank `rank` with an order index: several locks of
    /// this rank may be held at once when acquired in strictly ascending
    /// `order` (the cross-shard engine-lock protocol).
    pub const fn with_order(rank: LockRank, order: u64, value: T) -> Self {
        Mutex { rank, order, ordered: true, inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// This lock's static rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires the lock, blocking until available. Debug builds panic if
    /// the acquisition violates the rank order.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let tracked = Tracked::acquire(self.rank, self.order, self.ordered);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner, _tracked: tracked }
    }

    /// Attempts to acquire the lock without blocking. A `Some` guard is
    /// tracked exactly like [`Mutex::lock`] (and rank-checked first: a
    /// try-lock that *would* deadlock by rank is still a bug).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let tracked = Tracked::acquire(self.rank, self.order, self.ordered);
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g, _tracked: tracked }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: e.into_inner(), _tracked: tracked })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Mutex");
        s.field("rank", &self.rank);
        match self.inner.try_lock() {
            Ok(g) => s.field("data", &&*g).finish(),
            Err(_) => s.field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A ranked reader-writer lock with non-poisoning `read()`/`write()` APIs.
///
/// Both read and write acquisitions are rank-tracked: a same-rank re-read
/// on one thread is flagged too (with writer-priority locks it deadlocks
/// against a queued writer).
pub struct RwLock<T: ?Sized> {
    rank: LockRank,
    order: u64,
    ordered: bool,
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _tracked: Tracked,
}

/// Guard returned by [`RwLock::write`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _tracked: Tracked,
}

impl<T> RwLock<T> {
    /// Creates a lock of rank `rank` protecting `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        RwLock { rank, order: 0, ordered: false, inner: std::sync::RwLock::new(value) }
    }

    /// Creates a lock of rank `rank` with an order index (see
    /// [`Mutex::with_order`]).
    pub const fn with_order(rank: LockRank, order: u64, value: T) -> Self {
        RwLock { rank, order, ordered: true, inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// This lock's static rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let tracked = Tracked::acquire(self.rank, self.order, self.ordered);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner, _tracked: tracked }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let tracked = Tracked::acquire(self.rank, self.order, self.ordered);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner, _tracked: tracked }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("rank", &self.rank).finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with [`Mutex`].
///
/// While a thread waits, its mutex is released and the rank-tracking entry
/// for it is popped; re-acquisition after the wakeup is re-validated like a
/// fresh `lock()`, so a waiter that was woken into an inconsistent held
/// chain still panics in debug builds.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases `guard` and parks until notified, then
    /// re-acquires the mutex and returns a fresh guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>, mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        let MutexGuard { inner, _tracked } = guard;
        // the mutex is released for the duration of the wait: pop its
        // tracking entry so the parked thread's held chain is accurate
        drop(_tracked);
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        let tracked = Tracked::acquire(mutex.rank, mutex.order, mutex.ordered);
        MutexGuard { inner, _tracked: tracked }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ascending_acquisition_is_legal() {
        let a = Mutex::new(LockRank::Engine, 1);
        let b = Mutex::new(LockRank::Wal, 2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        assert_eq!(held_lock_count(), 2);
        drop(ga);
        drop(gb);
        assert_eq!(held_lock_count(), 0);
    }

    #[test]
    fn sequential_reacquisition_is_legal() {
        let a = Mutex::new(LockRank::Wal, ());
        let b = Mutex::new(LockRank::Engine, ());
        drop(a.lock());
        // Wal was released: taking the lower-ranked Engine afterwards is fine
        drop(b.lock());
        drop(a.lock());
    }

    /// The panic message of a joined thread, empty when it did not panic.
    fn panic_message(result: std::thread::Result<()>) -> String {
        match result {
            Ok(()) => String::new(),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".into()),
        }
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
    fn descending_acquisition_panics() {
        let caught = std::thread::spawn(|| {
            let hi = Mutex::new(LockRank::Wal, ());
            let lo = Mutex::new(LockRank::Engine, ());
            let _g = hi.lock();
            let _h = lo.lock(); // inversion: Engine < Wal
        })
        .join();
        let msg = panic_message(caught);
        assert!(msg.contains("lock-rank inversion"), "unexpected panic payload: {msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
    fn same_rank_unordered_panics() {
        let caught = std::thread::spawn(|| {
            let a = Mutex::new(LockRank::Engine, ());
            let b = Mutex::new(LockRank::Engine, ());
            let _g = a.lock();
            let _h = b.lock();
        })
        .join();
        assert!(caught.is_err(), "unordered same-rank nesting must panic");
    }

    #[test]
    fn ordered_same_rank_ascending_is_legal() {
        let shards: Vec<Mutex<u32>> =
            (0..4).map(|i| Mutex::with_order(LockRank::Engine, i, i as u32)).collect();
        let guards: Vec<_> = shards.iter().map(|m| m.lock()).collect();
        assert_eq!(guards.iter().map(|g| **g).sum::<u32>(), 6);
        // non-LIFO release (the 2PC guard vector drops front-to-back)
        drop(guards);
        assert_eq!(held_lock_count(), 0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
    fn ordered_same_rank_descending_panics() {
        let caught = std::thread::spawn(|| {
            let a = Mutex::with_order(LockRank::Engine, 3, ());
            let b = Mutex::with_order(LockRank::Engine, 1, ());
            let _g = a.lock();
            let _h = b.lock(); // shard 1 after shard 3: out of order
        })
        .join();
        let msg = panic_message(caught);
        assert!(msg.contains("lock-rank inversion"), "unexpected panic payload: {msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "rank tracking is debug-only")]
    fn rwlock_read_then_lower_rank_panics() {
        let caught = std::thread::spawn(|| {
            let hi = RwLock::new(LockRank::VersionCurrent, ());
            let lo = RwLock::new(LockRank::MemtableActive, ());
            let _g = hi.read();
            let _h = lo.read();
        })
        .join();
        assert!(caught.is_err());
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_tracking() {
        let pair = Arc::new((Mutex::new(LockRank::WorkerState, false), Condvar::new()));
        let waker = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*waker;
            let mut g = m.lock();
            *g = true;
            drop(g);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g, m);
        }
        assert_eq!(held_lock_count(), 1, "the reacquired mutex is tracked again");
        drop(g);
        t.join().unwrap();
        assert_eq!(held_lock_count(), 0);
    }

    #[test]
    fn try_lock_contended_returns_none_and_untracks() {
        let m = Arc::new(Mutex::new(LockRank::Engine, ()));
        let held = m.lock();
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            assert!(m2.try_lock().is_none());
            assert_eq!(held_lock_count(), 0, "a failed try_lock leaves nothing tracked");
        })
        .join()
        .unwrap();
        drop(held);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn guards_deref_and_debug() {
        let m = Mutex::new(LockRank::Wal, vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
        let rw = RwLock::new(LockRank::VersionCurrent, 7u32);
        *rw.write() += 1;
        assert_eq!(*rw.read(), 8);
        assert!(format!("{m:?}").contains("Wal"));
        assert!(format!("{rw:?}").contains("VersionCurrent"));
        assert!(!format!("{:?}", Condvar::new()).is_empty());
        assert_eq!(rw.into_inner(), 8);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
