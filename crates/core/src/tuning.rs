//! Navigable design: choosing the delete-tile granularity `h` (paper §4.2.6).
//!
//! KiWi trades secondary-range-delete cost against lookup cost. Given the
//! composition of the workload (how frequent each operation class is relative
//! to secondary range deletes), Equation (3) of the paper bounds the largest
//! `h` for which Lethe's weighted cost stays below the state of the art:
//!
//! ```text
//! h ≤ (N/B) / ( (f_EPQ + f_PQ)/f_SRD · FPR  +  f_SRQ/f_SRD · L )
//! ```
//!
//! [`WorkloadProfile`] describes the workload, [`optimal_delete_tile_pages`]
//! evaluates the bound, and [`workload_cost`] evaluates the full Equation (1)
//! cost for any candidate `h` so the two can be cross-checked numerically.

/// Relative frequencies of the operation classes of a workload
/// (paper §4.2.6). Values are weights; only their ratios matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Point queries with an empty result (`f_EPQ`).
    pub empty_point_lookups: f64,
    /// Point queries on existing keys (`f_PQ`).
    pub point_lookups: f64,
    /// Short range queries (`f_SRQ`).
    pub short_range_lookups: f64,
    /// Long range queries (`f_LRQ`).
    pub long_range_lookups: f64,
    /// Selectivity `s` of long range queries.
    pub long_range_selectivity: f64,
    /// Secondary range deletes (`f_SRD`).
    pub secondary_range_deletes: f64,
    /// Inserts / updates (`f_I`).
    pub inserts: f64,
}

impl Default for WorkloadProfile {
    /// The running example of §4.2.6: between two secondary range deletes the
    /// application executes 50 M point queries and 10 K short range queries.
    fn default() -> Self {
        WorkloadProfile {
            empty_point_lookups: 25.0e6,
            point_lookups: 25.0e6,
            short_range_lookups: 10.0e3,
            long_range_lookups: 0.0,
            long_range_selectivity: 0.0,
            secondary_range_deletes: 1.0,
            inserts: 0.0,
        }
    }
}

/// Static parameters of the tree needed to evaluate Equations (1)–(3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeShape {
    /// Total entries in the tree (`N`).
    pub entries: f64,
    /// Entries per page (`B`).
    pub entries_per_page: f64,
    /// Number of disk levels (`L`).
    pub levels: f64,
    /// Bloom filter false positive rate (`FPR`).
    pub false_positive_rate: f64,
    /// Size ratio (`T`), used for the insert cost term.
    pub size_ratio: f64,
}

impl TreeShape {
    /// The 400 GB / 4 KB-page example of §4.2.6.
    pub fn paper_example() -> Self {
        let pages = 400.0e9 / 4096.0;
        TreeShape {
            entries: pages * 4.0,
            entries_per_page: 4.0,
            levels: (pages).log10(), // log_T(N/B) with T = 10
            false_positive_rate: 0.02,
            size_ratio: 10.0,
        }
    }

    /// Number of pages in the tree (`N/B`).
    pub fn pages(&self) -> f64 {
        self.entries / self.entries_per_page
    }
}

/// Evaluates the bound of Equation (3): the largest delete-tile granularity
/// `h` (in pages) for which Lethe's workload cost does not exceed the state
/// of the art. Returns at least 1. When the workload has no secondary range
/// deletes the bound is unbounded and the function returns 1 (the classic
/// layout is optimal — there is nothing to gain from larger tiles).
pub fn optimal_delete_tile_pages(profile: &WorkloadProfile, shape: &TreeShape) -> usize {
    if profile.secondary_range_deletes <= 0.0 {
        return 1;
    }
    let lookups_per_srd =
        (profile.empty_point_lookups + profile.point_lookups) / profile.secondary_range_deletes;
    let srq_per_srd = profile.short_range_lookups / profile.secondary_range_deletes;
    let denominator =
        lookups_per_srd * shape.false_positive_rate + srq_per_srd * shape.levels;
    if denominator <= 0.0 {
        // no read pressure at all: any h is fine, cap at one tile per file
        return usize::MAX;
    }
    let bound = shape.pages() / denominator;
    bound.floor().max(1.0) as usize
}

/// Evaluates the weighted per-operation cost of Equation (1) for a given
/// delete-tile granularity, in expected page I/Os. Setting `h = 1` yields the
/// state-of-the-art cost, so `workload_cost(profile, shape, h)` ≤
/// `workload_cost(profile, shape, 1)` exactly when Equation (3) admits `h`.
pub fn workload_cost(profile: &WorkloadProfile, shape: &TreeShape, h: usize) -> f64 {
    let h = h.max(1) as f64;
    let fpr = shape.false_positive_rate;
    let pages = shape.pages();
    let levels = shape.levels;
    let empty_pq = profile.empty_point_lookups * fpr * h;
    let pq = profile.point_lookups * (1.0 + fpr * h);
    let srq = profile.short_range_lookups * levels * h;
    let lrq = profile.long_range_lookups * profile.long_range_selectivity * pages;
    let srd = profile.secondary_range_deletes * pages / h;
    let ins = profile.inserts * (pages.log(shape.size_ratio.max(2.0)) / shape.entries_per_page);
    empty_pq + pq + srq + lrq + srd + ins
}

/// Numerically searches powers of two up to `max_h` for the granularity with
/// the lowest Equation-(1) cost. This is how Lethe picks `h` when the
/// analytic bound and the cost curve disagree slightly (e.g. extremely
/// delete-heavy workloads where the optimum exceeds the bound).
pub fn best_delete_tile_pages_numeric(
    profile: &WorkloadProfile,
    shape: &TreeShape,
    max_h: usize,
) -> usize {
    let mut best_h = 1usize;
    let mut best_cost = workload_cost(profile, shape, 1);
    let mut h = 2usize;
    while h <= max_h {
        let c = workload_cost(profile, shape, h);
        if c < best_cost {
            best_cost = c;
            best_h = h;
        }
        h *= 2;
    }
    best_h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example_gives_about_one_hundred() {
        // §4.2.6: h ≤ 10^8 / (10^6 + 8·10^4) ≈ 102
        let shape = TreeShape {
            entries: 4.0 * 1.0e8,
            entries_per_page: 4.0,
            levels: 8.0,
            false_positive_rate: 0.02,
            size_ratio: 10.0,
        };
        let profile = WorkloadProfile::default();
        let h = optimal_delete_tile_pages(&profile, &shape);
        assert!((90..=110).contains(&h), "h = {h}");
    }

    #[test]
    fn no_secondary_deletes_means_classic_layout() {
        let shape = TreeShape::paper_example();
        let profile = WorkloadProfile { secondary_range_deletes: 0.0, ..Default::default() };
        assert_eq!(optimal_delete_tile_pages(&profile, &shape), 1);
    }

    #[test]
    fn read_free_workload_is_unbounded() {
        let shape = TreeShape::paper_example();
        let profile = WorkloadProfile {
            empty_point_lookups: 0.0,
            point_lookups: 0.0,
            short_range_lookups: 0.0,
            long_range_lookups: 0.0,
            long_range_selectivity: 0.0,
            secondary_range_deletes: 1.0,
            inserts: 0.0,
        };
        assert_eq!(optimal_delete_tile_pages(&profile, &shape), usize::MAX);
    }

    #[test]
    fn more_lookups_shrink_h_more_deletes_grow_it() {
        let shape = TreeShape::paper_example();
        let read_heavy = WorkloadProfile { point_lookups: 500.0e6, ..Default::default() };
        let delete_heavy = WorkloadProfile { secondary_range_deletes: 50.0, ..Default::default() };
        let base = optimal_delete_tile_pages(&WorkloadProfile::default(), &shape);
        assert!(optimal_delete_tile_pages(&read_heavy, &shape) < base);
        assert!(optimal_delete_tile_pages(&delete_heavy, &shape) > base);
    }

    #[test]
    fn equation_one_and_three_agree() {
        let shape = TreeShape {
            entries: 4.0e6,
            entries_per_page: 4.0,
            levels: 4.0,
            false_positive_rate: 0.02,
            size_ratio: 10.0,
        };
        let profile = WorkloadProfile {
            empty_point_lookups: 2_000.0,
            point_lookups: 2_000.0,
            short_range_lookups: 50.0,
            long_range_lookups: 0.0,
            long_range_selectivity: 0.0,
            secondary_range_deletes: 1.0,
            inserts: 0.0,
        };
        let bound = optimal_delete_tile_pages(&profile, &shape);
        assert!(bound >= 2, "bound = {bound}");
        // any admissible h is no worse than the state of the art (h = 1)
        let soa = workload_cost(&profile, &shape, 1);
        assert!(workload_cost(&profile, &shape, bound.min(1024)) <= soa * 1.01);
        // the numeric optimum is admissible and at least as good
        let best = best_delete_tile_pages_numeric(&profile, &shape, 4096);
        assert!(workload_cost(&profile, &shape, best) <= workload_cost(&profile, &shape, 1));
    }

    #[test]
    fn cost_curve_is_u_shaped_in_h() {
        let shape = TreeShape::paper_example();
        let profile = WorkloadProfile::default();
        let c1 = workload_cost(&profile, &shape, 1);
        let c64 = workload_cost(&profile, &shape, 64);
        let c_huge = workload_cost(&profile, &shape, 1 << 20);
        assert!(c64 < c1, "moderate h should beat the classic layout");
        assert!(c_huge > c64, "oversized tiles hurt lookups");
    }
}
