//! The Lethe engine: FADE + KiWi behind one public API (paper §4.3).
//!
//! [`Lethe`] is an [`LsmTree`] configured with
//!
//! * the [`FadePolicy`] compaction strategy so every
//!   tombstone persists within the delete persistence threshold `D_th`,
//! * a delete-tile granularity `h` (either chosen explicitly or derived from a
//!   [`WorkloadProfile`] via Equation (3)),
//! * blind-delete suppression, and
//! * KiWi page drops for secondary range deletes.
//!
//! Construction goes through [`LetheBuilder`], which exposes the two tuning
//! knobs the paper calls out (`D_th` and `h`) along with the standard LSM
//! knobs of Table 1.

use crate::fade::{FadePolicy, SaturationSelection};
use crate::tuning::{optimal_delete_tile_pages, TreeShape, WorkloadProfile};
use bytes::Bytes;
use lethe_lsm::compaction::CompactionPolicy;
use lethe_lsm::config::{CompactionStrategy, LsmConfig, MergePolicy, SecondaryDeleteMode};
use lethe_lsm::sstable::SecondaryDeleteStats;
use lethe_lsm::strategy::{DateTieredPolicy, SizeTieredPolicy};
use lethe_lsm::stats::{ContentSnapshot, TreeStats};
use lethe_lsm::batch::WriteBatch;
use lethe_lsm::snapshot::SnapshotTracker;
use lethe_lsm::tree::{LsmTree, MaintenanceMode, RangeIter, TreeReader, TreeSnapshot};
use lethe_storage::{
    CacheSnapshot, CachedBackend, DeleteKey, Entry, FailPoint, FileBackend, FileWal,
    InMemoryBackend, IoSnapshot, LogicalClock, Manifest, PageCache, Result, SortKey,
    StorageBackend, StorageError, SyncPolicy, Timestamp, MICROS_PER_SEC,
};
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Builder for a [`Lethe`] engine.
#[derive(Debug, Clone)]
pub struct LetheBuilder {
    config: LsmConfig,
    dth: Timestamp,
    selection: SaturationSelection,
    failpoint: Option<FailPoint>,
    /// An externally supplied block cache shared with other engines (the
    /// sharded front-end passes one cache to every shard); when absent and
    /// `config.block_cache_bytes > 0`, a private cache is created at build.
    shared_cache: Option<Arc<PageCache>>,
    /// A sequence-number allocator shared with sibling shards, so one
    /// cross-shard batch commits under a single seqnum range.
    seqnum_allocator: Option<Arc<AtomicU64>>,
    /// Cross-shard batch ids the batch-commit log proves committed; WAL
    /// replay rolls back prepared slices whose id is missing here.
    committed_batches: Option<HashSet<u64>>,
    /// A live-snapshot tracker shared with sibling shards, so one registered
    /// snapshot fence gates tombstone GC in every shard at once.
    snapshot_tracker: Option<Arc<SnapshotTracker>>,
}

impl Default for LetheBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LetheBuilder {
    /// Starts from the Table 1 reference configuration with a delete
    /// persistence threshold of one hour of logical time and `h = 1`.
    pub fn new() -> Self {
        let config = LsmConfig {
            secondary_delete_mode: SecondaryDeleteMode::KiwiPageDrops,
            suppress_blind_deletes: true,
            delete_persistence_threshold: Some(3600 * MICROS_PER_SEC),
            ..LsmConfig::default()
        };
        LetheBuilder {
            config,
            dth: 3600 * MICROS_PER_SEC,
            selection: SaturationSelection::MostInvalidations,
            failpoint: None,
            shared_cache: None,
            seqnum_allocator: None,
            committed_batches: None,
            snapshot_tracker: None,
        }
    }

    /// Shares a sequence-number allocator with this engine (the sharded
    /// front-end hands one allocator to every shard so a cross-shard batch
    /// commits under one seqnum range).
    pub(crate) fn seqnum_allocator(mut self, alloc: Arc<AtomicU64>) -> Self {
        self.seqnum_allocator = Some(alloc);
        self
    }

    /// Supplies the committed cross-shard batch ids recovery must honour:
    /// a prepared-but-uncommitted batch slice in the WAL rolls back.
    pub(crate) fn committed_batches(mut self, ids: HashSet<u64>) -> Self {
        self.committed_batches = Some(ids);
        self
    }

    /// Shares a live-snapshot tracker with this engine (the sharded
    /// front-end hands one tracker to every shard so a snapshot's seqnum
    /// fence gates tombstone GC store-wide).
    pub(crate) fn snapshot_tracker(mut self, tracker: Arc<SnapshotTracker>) -> Self {
        self.snapshot_tracker = Some(tracker);
        self
    }

    /// Sets the block-cache memory budget in bytes (`0` disables caching,
    /// the default). The cache holds decoded pages between the table layer
    /// and the device, so repeated point/range reads of warm data skip both
    /// the device access and the page decode.
    pub fn block_cache_bytes(mut self, bytes: usize) -> Self {
        self.config.block_cache_bytes = bytes;
        self
    }

    /// If `true`, flush/compaction output pages are inserted into the block
    /// cache as they are written. See
    /// [`LsmConfig::block_cache_warm_writes`].
    pub fn warm_block_cache_on_write(mut self, warm: bool) -> Self {
        self.config.block_cache_warm_writes = warm;
        self
    }

    /// Shares an existing [`PageCache`] with this engine instead of creating
    /// a private one: the sharded front-end hands one cache to every shard
    /// so the memory budget is global. Implies caching regardless of
    /// `block_cache_bytes`.
    pub fn shared_block_cache(mut self, cache: Arc<PageCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Resolves which cache this build should use: an externally shared one
    /// wins, otherwise a private cache is created when `block_cache_bytes >
    /// 0`. The single source of the resolution policy — the sharded builder
    /// calls it too, so the sharded and single-shard paths cannot diverge.
    pub(crate) fn resolve_cache(&self) -> Option<Arc<PageCache>> {
        self.shared_cache.clone().or_else(|| {
            (self.config.block_cache_bytes > 0)
                .then(|| PageCache::new_shared(self.config.block_cache_bytes))
        })
    }

    /// Resolves the cache this build should use (shared, private, or none)
    /// and wraps `backend` accordingly.
    fn wrap_backend(
        &self,
        backend: Arc<dyn StorageBackend>,
    ) -> (Arc<dyn StorageBackend>, Option<Arc<PageCache>>) {
        match self.resolve_cache() {
            Some(cache) => (
                Arc::new(CachedBackend::new(
                    backend,
                    Arc::clone(&cache),
                    self.config.block_cache_warm_writes,
                )),
                Some(cache),
            ),
            None => (backend, None),
        }
    }

    /// Sets the delete persistence threshold `D_th` in seconds of logical
    /// time (the data-retention SLA).
    pub fn delete_persistence_threshold_secs(mut self, secs: f64) -> Self {
        self.dth = (secs * MICROS_PER_SEC as f64) as Timestamp;
        self.config.delete_persistence_threshold = Some(self.dth);
        self
    }

    /// Sets the delete persistence threshold in microseconds of logical time.
    pub fn delete_persistence_threshold_micros(mut self, micros: Timestamp) -> Self {
        self.dth = micros;
        self.config.delete_persistence_threshold = Some(micros);
        self
    }

    /// Sets the delete-tile granularity `h` (pages per delete tile).
    pub fn delete_tile_pages(mut self, h: usize) -> Self {
        self.config.pages_per_delete_tile = h.max(1);
        // keep the file size a multiple of the tile size
        let files = self.config.max_pages_per_file.max(h);
        self.config.max_pages_per_file = files.div_ceil(h.max(1)) * h.max(1);
        self
    }

    /// Derives the delete-tile granularity from a workload description using
    /// Equation (3), capped at one tile per file.
    pub fn tune_delete_tiles_for(self, profile: &WorkloadProfile, expected_entries: u64) -> Self {
        let levels = expected_levels(&self.config, expected_entries);
        let shape = TreeShape {
            entries: expected_entries as f64,
            entries_per_page: self.config.entries_per_page as f64,
            levels: levels as f64,
            false_positive_rate:
                (-self.config.bits_per_key * std::f64::consts::LN_2.powi(2)).exp(),
            size_ratio: self.config.size_ratio as f64,
        };
        let h = optimal_delete_tile_pages(profile, &shape).min(self.config.max_pages_per_file);
        self.delete_tile_pages(h.max(1))
    }

    /// Sets the size ratio `T`.
    pub fn size_ratio(mut self, t: usize) -> Self {
        self.config.size_ratio = t.max(2);
        self
    }

    /// Sets the buffer geometry: pages, entries per page and entry size.
    pub fn buffer(mut self, pages: usize, entries_per_page: usize, entry_size: usize) -> Self {
        self.config.buffer_pages = pages.max(1);
        self.config.entries_per_page = entries_per_page.max(1);
        self.config.entry_size = entry_size.max(1);
        self
    }

    /// Sets the Bloom filter budget in bits per entry.
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.config.bits_per_key = bits.max(1.0);
        self
    }

    /// Selects leveling or tiering.
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.config.merge_policy = policy;
        self
    }

    /// Selects the compaction strategy driving background maintenance.
    /// [`CompactionStrategy::Default`] (the default) installs FADE, the
    /// paper's delete-aware policy; the tiered strategies replace it with
    /// [`SizeTieredPolicy`] or [`DateTieredPolicy`] — under those, tombstone
    /// persistence rides along with window/class merges and TTL whole-file
    /// drops instead of `D_th`-driven triggers. The tiered strategies need
    /// tiering flushes, so this also switches the merge policy to
    /// [`MergePolicy::Tiering`].
    pub fn compaction_strategy(mut self, strategy: CompactionStrategy) -> Self {
        self.config.compaction_strategy = strategy;
        if !matches!(strategy, CompactionStrategy::Default) {
            self.config.merge_policy = MergePolicy::Tiering;
        }
        self
    }

    /// Constructs the compaction policy the configured strategy calls for.
    fn make_policy(&self) -> Box<dyn CompactionPolicy> {
        match self.config.compaction_strategy {
            CompactionStrategy::Default => {
                Box::new(FadePolicy::with_selection(self.dth, self.selection))
            }
            CompactionStrategy::SizeTiered { fan_in } => Box::new(SizeTieredPolicy::new(fan_in)),
            CompactionStrategy::DateTiered { base_window_micros, fan_in, ttl_micros } => {
                Box::new(DateTieredPolicy::new(base_window_micros, fan_in, ttl_micros))
            }
        }
    }

    /// Sets the ingestion rate `I` (entries per second of logical time).
    pub fn ingestion_rate(mut self, entries_per_sec: u64) -> Self {
        self.config.ingestion_rate = entries_per_sec.max(1);
        self
    }

    /// Sets the secondary optimisation goal of saturation-driven compactions
    /// (the paper's SO vs SD modes).
    pub fn saturation_selection(mut self, selection: SaturationSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Sets when a durable store's write-ahead log fsyncs appends. Durable
    /// opens default to [`SyncPolicy::Always`] ("logged before acknowledged"
    /// holds against power failures); [`SyncPolicy::EveryN`] and
    /// [`SyncPolicy::OnFlush`] trade a bounded loss window for throughput.
    pub fn wal_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.config.wal_sync = policy;
        self
    }

    /// Attaches a crash-injection fail point to every durable component of
    /// the store opened by [`LetheBuilder::open`]/[`LetheBuilder::open_named`]
    /// (data file, WAL, manifest). Arm it to make the n-th subsequent durable
    /// step fail, simulating a kill at that exact point; used by the
    /// crash-recovery tests. No effect on in-memory engines.
    pub fn crash_failpoint(mut self, fp: FailPoint) -> Self {
        self.failpoint = Some(fp);
        self
    }

    /// Overrides the low-level configuration (advanced use). The settings
    /// that define Lethe are re-asserted on top of the supplied config:
    /// secondary range deletes always use KiWi page drops, and the delete
    /// persistence threshold (if present) is adopted.
    pub fn with_config(mut self, config: LsmConfig) -> Self {
        if let Some(dth) = config.delete_persistence_threshold {
            self.dth = dth;
        }
        self.config = config;
        self.config.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
        self.config.delete_persistence_threshold = Some(self.dth);
        self
    }

    /// Direct access to the configuration being built.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Builds an engine on the in-memory simulated device.
    pub fn build(self) -> Result<Lethe> {
        self.build_on(InMemoryBackend::new_shared(), LogicalClock::new())
    }

    /// Builds an engine on an explicit device and clock. When a block cache
    /// is configured the device is wrapped in a [`CachedBackend`], so every
    /// layer above (tables, tree, readers) transparently reads through it.
    pub fn build_on(self, backend: Arc<dyn StorageBackend>, clock: LogicalClock) -> Result<Lethe> {
        let (backend, cache) = self.wrap_backend(backend);
        let policy = self.make_policy();
        let mut tree = LsmTree::new(self.config, backend, clock, policy)?;
        if let Some(alloc) = self.seqnum_allocator {
            tree = tree.with_seqnum_allocator(alloc);
        }
        if let Some(tracker) = self.snapshot_tracker {
            tree = tree.with_snapshot_tracker(tracker);
        }
        Ok(Lethe { tree, cache })
    }

    /// Opens (or creates) a durable engine rooted at `dir`: a file-backed
    /// device, a write-ahead log and a manifest. On startup the tree's
    /// levels and files are recovered from the manifest (flushed and
    /// compacted data survives restarts), then the WAL is replayed on top,
    /// so every acknowledged write is returned by the reopened store.
    pub fn open(self, dir: impl AsRef<Path>) -> Result<Lethe> {
        self.open_named(dir, "lethe", LogicalClock::new())
    }

    /// Opens (or creates) a durable engine *namespaced* inside `dir` (data
    /// file `dir/<name>.data`, log `dir/<name>.wal`, manifest
    /// `dir/<name>.manifest`) on an explicit clock. Several namespaced
    /// engines can share one directory and one clock, which is how
    /// [`ShardedLethe`](crate::shard::ShardedLethe) keeps its shards
    /// together with consistent delete-persistence TTLs.
    ///
    /// Recovery order: the data file is scanned to rebuild the page index
    /// (truncating any torn tail), the manifest's edit log is folded into
    /// the last committed tree state, levels and files are rebuilt from it
    /// (re-deriving Bloom filters and fence pointers), unreferenced pages
    /// are released, and finally the WAL — whose own torn tail, if any, is
    /// truncated away — is replayed on top. The WAL is only truncated once a
    /// later flush commits a covering manifest edit.
    pub fn open_named(
        self,
        dir: impl AsRef<Path>,
        name: &str,
        clock: LogicalClock,
    ) -> Result<Lethe> {
        let dir = dir.as_ref();
        let mut backend = FileBackend::open_named(dir, name)?;
        let mut wal =
            FileWal::open(dir.join(format!("{name}.wal")))?.with_sync_policy(self.config.wal_sync);
        let mut manifest = Manifest::open(dir.join(format!("{name}.manifest")))?;
        if let Some(fp) = &self.failpoint {
            backend.set_failpoint(fp.clone());
            wal = wal.with_failpoint(fp.clone());
            manifest.set_failpoint(fp.clone());
        }
        // the cache wraps the device before the tree ever sees it, so
        // recovery's unreferenced-page GC already invalidates through it
        let (backend, cache) = self.wrap_backend(Arc::new(backend));
        let policy = self.make_policy();
        let mut tree =
            LsmTree::new(self.config, backend, clock, policy)?.with_manifest(manifest);
        if let Some(fp) = self.failpoint {
            tree = tree.with_failpoint(fp);
        }
        if let Some(alloc) = self.seqnum_allocator {
            tree = tree.with_seqnum_allocator(alloc);
        }
        if let Some(tracker) = self.snapshot_tracker {
            tree = tree.with_snapshot_tracker(tracker);
        }
        if let Some(ids) = self.committed_batches {
            tree.set_committed_batches(ids);
        }
        tree.recover(&wal)?;
        Ok(Lethe { tree: tree.with_wal(Box::new(wal)), cache })
    }

    /// Opens the online checkpoint at `dir` (written by
    /// [`ShardedLethe::checkpoint`](crate::shard::ShardedLethe::checkpoint))
    /// as a normal durable store.
    ///
    /// The checkpoint's completeness marker is verified first: a directory
    /// whose marker is missing (the checkpoint crashed before its commit
    /// point) or corrupt is refused outright instead of opening as a
    /// silently short store. The restored engine resumes at the snapshot's
    /// seqnum fence, so writes made after the restore never collide with
    /// sequence numbers the checkpoint already used.
    pub fn restore(self, dir: impl AsRef<Path>) -> Result<Lethe> {
        let dir = dir.as_ref();
        let marker = lethe_storage::read_marker(dir)?;
        let db = self.open_named(dir, "checkpoint", LogicalClock::new())?;
        let next = db.tree().next_seqnum();
        if next < marker.fence {
            return Err(StorageError::Corruption(format!(
                "checkpoint at {} recovered to seqnum {next} but its marker \
                 promises the snapshot fence {}: the manifest is behind the marker",
                dir.display(),
                marker.fence
            )));
        }
        Ok(db)
    }
}

fn expected_levels(config: &LsmConfig, entries: u64) -> usize {
    let buffer_entries = config.buffer_capacity_entries().max(1) as f64;
    let t = config.size_ratio.max(2) as f64;
    let ratio = entries.max(1) as f64 / buffer_entries;
    if ratio <= 1.0 {
        1
    } else {
        ratio.log(t).ceil().max(1.0) as usize
    }
}

/// The Lethe key-value engine.
pub struct Lethe {
    tree: LsmTree,
    /// The block cache the engine's device reads through, if one was
    /// configured (private, or shared with sibling shards).
    cache: Option<Arc<PageCache>>,
}

impl Lethe {
    /// Starts building an engine.
    pub fn builder() -> LetheBuilder {
        LetheBuilder::new()
    }

    /// Inserts (or updates) `key` with an associated delete key (e.g. a
    /// creation timestamp) and value.
    pub fn put(&mut self, key: SortKey, delete_key: DeleteKey, value: impl Into<Bytes>) -> Result<()> {
        self.tree.put(key, delete_key, value.into())
    }

    /// Point lookup. Lock-free with respect to background flushes and
    /// compactions (served through the tree's snapshot read surface).
    pub fn get(&self, key: SortKey) -> Result<Option<Bytes>> {
        self.tree.get(key)
    }

    /// Point delete on the sort key. Returns `false` if the delete was
    /// suppressed as blind (the key cannot exist).
    pub fn delete(&mut self, key: SortKey) -> Result<bool> {
        self.tree.delete(key)
    }

    /// Range delete on the sort key over `[start, end)`.
    pub fn delete_range(&mut self, start: SortKey, end: SortKey) -> Result<()> {
        self.tree.delete_range(start, end)
    }

    /// Atomically applies a [`WriteBatch`]: logged as one WAL frame (crash
    /// recovery replays it entirely or not at all), made durable per the
    /// sync policy with a single barrier, and applied so that concurrent
    /// readers never observe a prefix of the batch's point operations.
    pub fn write_batch(&mut self, batch: WriteBatch) -> Result<()> {
        self.tree.write_batch(batch)
    }

    /// Secondary range delete: removes every entry whose **delete key** lies
    /// in `[lo, hi)` using KiWi full/partial page drops.
    pub fn delete_where_delete_key_in(
        &mut self,
        lo: DeleteKey,
        hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        self.tree.secondary_range_delete(lo, hi)
    }

    /// Range lookup on the sort key over `[lo, hi)`.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        self.tree.range(lo, hi)
    }

    /// Streaming range scan over `[lo, hi)`: returns an iterator of live
    /// `(key, value)` pairs in key order that decodes file pages lazily as
    /// it is advanced, so large scans (analytics, backups, paging APIs) can
    /// be consumed incrementally without materialising the whole result.
    ///
    /// The iterator owns a stable snapshot taken at creation: concurrent
    /// writes, flushes and compactions affect neither its contents nor the
    /// pages it still has to read (see [`lethe_lsm::RangeIter`]).
    pub fn iter_range(&self, lo: SortKey, hi: SortKey) -> Result<RangeIter> {
        self.tree.reader().iter_range(lo, hi)
    }

    /// Secondary range lookup: every live entry whose delete key lies in
    /// `[lo, hi)`.
    pub fn scan_by_delete_key(&self, lo: DeleteKey, hi: DeleteKey) -> Result<Vec<Entry>> {
        self.tree.secondary_range_scan(lo, hi)
    }

    /// Flushes the write buffer and runs the compaction loop (including any
    /// TTL-driven compactions that are due).
    pub fn persist(&mut self) -> Result<()> {
        self.tree.flush()?;
        self.tree.maintain()
    }

    /// Runs only the compaction loop; useful to let FADE react to the passage
    /// of logical time without new writes.
    pub fn maintain(&mut self) -> Result<()> {
        self.tree.maintain()
    }

    /// Lifetime operation counters (write-side counters folded together
    /// with the lock-free read-side lookup counters).
    pub fn stats(&self) -> TreeStats {
        self.tree.stats()
    }

    /// Returns a cheap-to-clone, `Send + Sync` handle serving lock-free
    /// snapshot reads (see [`lethe_lsm::TreeReader`]): `get`/`range`/
    /// secondary scans proceed while this engine flushes or compacts.
    pub fn reader(&self) -> TreeReader {
        self.tree.reader()
    }

    /// Restores the checkpoint at `dir` with the reference configuration;
    /// see [`LetheBuilder::restore`] to restore under explicit knobs.
    pub fn restore(dir: impl AsRef<Path>) -> Result<Lethe> {
        LetheBuilder::new().restore(dir)
    }

    /// Captures a frozen point-in-time view of this engine's tree (see
    /// [`lethe_lsm::tree::TreeSnapshot`]). The `&mut` receiver is the write
    /// serialisation the capture requires; the returned view reads without
    /// any lock. Registering the covering seqnum fence with the
    /// [`snapshot tracker`](Lethe::snapshot_tracker) — so tombstone GC is
    /// gated while the view is alive — is the caller's responsibility, which
    /// the sharded front-end's
    /// [`ShardedLethe::snapshot`](crate::shard::ShardedLethe::snapshot)
    /// discharges automatically.
    pub fn capture_snapshot(&mut self) -> TreeSnapshot {
        self.tree.capture_snapshot()
    }

    /// The engine's live-snapshot tracker (shared with sibling shards in a
    /// sharded store).
    pub fn snapshot_tracker(&self) -> &Arc<SnapshotTracker> {
        self.tree.snapshot_tracker()
    }

    /// Selects who runs flushes and compactions: inline (default) or a
    /// background worker driving [`LsmTree::plan_job`] /
    /// [`lethe_lsm::JobPlan::execute`] / [`LsmTree::apply_job`]. The sharded
    /// front-end switches its shards to background mode and attaches a
    /// [`crate::compactor::Compactor`] to each.
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        self.tree.set_maintenance_mode(mode);
    }

    /// Device I/O counters (including block-cache hit/miss counts when a
    /// cache is configured).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.tree.io_snapshot()
    }

    /// The block cache this engine reads through, if one is configured.
    pub fn block_cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.as_ref()
    }

    /// Counters and occupancy of the block cache, if one is configured.
    /// For an engine sharing its cache (a shard), the numbers are those of
    /// the whole shared cache.
    pub fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.cache.as_ref().map(|c| c.snapshot())
    }

    /// Measurement-time snapshot of the tree contents (space amplification,
    /// tombstone ages, …).
    pub fn snapshot_contents(&self) -> Result<ContentSnapshot> {
        self.tree.snapshot_contents()
    }

    /// Write amplification so far.
    pub fn write_amplification(&self) -> f64 {
        self.tree.write_amplification()
    }

    /// The logical clock; advance it to model the passage of time between
    /// operations (e.g. an idle period before a retention deadline).
    pub fn clock(&self) -> &LogicalClock {
        self.tree.clock()
    }

    /// Engine configuration.
    pub fn config(&self) -> &LsmConfig {
        self.tree.config()
    }

    /// The underlying tree (white-box access for experiments and tests).
    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }

    /// Mutable access to the underlying tree.
    pub fn tree_mut(&mut self) -> &mut LsmTree {
        &mut self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_lethe_shaped() {
        let b = LetheBuilder::new();
        let cfg = b.config();
        assert_eq!(cfg.secondary_delete_mode, SecondaryDeleteMode::KiwiPageDrops);
        assert!(cfg.suppress_blind_deletes);
        assert!(cfg.delete_persistence_threshold.is_some());
    }

    #[test]
    fn builder_knobs_apply() {
        let b = LetheBuilder::new()
            .delete_persistence_threshold_secs(60.0)
            .delete_tile_pages(8)
            .size_ratio(4)
            .buffer(16, 8, 128)
            .bits_per_key(12.0)
            .merge_policy(MergePolicy::Tiering)
            .ingestion_rate(2048);
        let cfg = b.config();
        assert_eq!(cfg.delete_persistence_threshold, Some(60_000_000));
        assert_eq!(cfg.pages_per_delete_tile, 8);
        assert_eq!(cfg.max_pages_per_file % 8, 0);
        assert_eq!(cfg.size_ratio, 4);
        assert_eq!(cfg.buffer_pages, 16);
        assert_eq!(cfg.entries_per_page, 8);
        assert_eq!(cfg.entry_size, 128);
        assert_eq!(cfg.bits_per_key, 12.0);
        assert_eq!(cfg.merge_policy, MergePolicy::Tiering);
        assert_eq!(cfg.ingestion_rate, 2048);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn tuning_from_workload_profile_sets_h() {
        let profile = WorkloadProfile {
            empty_point_lookups: 100.0,
            point_lookups: 100.0,
            short_range_lookups: 1.0,
            long_range_lookups: 0.0,
            long_range_selectivity: 0.0,
            secondary_range_deletes: 1.0,
            inserts: 0.0,
        };
        let b = LetheBuilder::new()
            .buffer(8, 4, 64)
            .size_ratio(4)
            .tune_delete_tiles_for(&profile, 1 << 16);
        assert!(b.config().pages_per_delete_tile >= 1);
        assert!(b.config().validate().is_ok());
    }

    #[test]
    fn end_to_end_put_delete_get() {
        let mut db = LetheBuilder::new()
            .buffer(8, 4, 64)
            .size_ratio(4)
            .delete_tile_pages(4)
            .delete_persistence_threshold_secs(10.0)
            .build()
            .unwrap();
        for k in 0..2000u64 {
            db.put(k, k % 365, format!("value-{k}")).unwrap();
        }
        db.persist().unwrap();
        assert_eq!(db.get(42).unwrap(), Some(Bytes::from("value-42")));
        assert!(db.delete(42).unwrap());
        assert_eq!(db.get(42).unwrap(), None);
        // a blind delete on a key that never existed is suppressed
        assert!(!db.delete(1_000_000).unwrap());
        assert_eq!(db.stats().blind_deletes_suppressed, 1);
        // secondary range delete: drop everything older than "day 100"
        let stats = db.delete_where_delete_key_in(0, 100).unwrap();
        assert!(stats.entries_deleted > 0);
        assert!(db.scan_by_delete_key(0, 100).unwrap().is_empty());
        assert!(db.get(100).unwrap().is_some()); // delete key 100 not covered
        assert_eq!(db.get(99).unwrap(), None); // delete key 99 covered
    }

    #[test]
    fn deletes_persist_within_threshold() {
        // Dth = 2 seconds of logical time at 1000 entries/sec
        let mut db = LetheBuilder::new()
            .buffer(8, 4, 64)
            .size_ratio(4)
            .delete_persistence_threshold_secs(2.0)
            .ingestion_rate(1000)
            .build()
            .unwrap();
        for k in 0..1000u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        for k in 0..200u64 {
            db.delete(k * 5).unwrap();
        }
        // keep ingesting unrelated keys so logical time moves past Dth
        for k in 10_000..14_000u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        db.persist().unwrap();
        let snap = db.snapshot_contents().unwrap();
        let dth = db.config().delete_persistence_threshold.unwrap();
        for (age, count) in &snap.tombstone_file_ages {
            assert!(
                *age <= dth,
                "a file holding {count} tombstones is older ({age} µs) than Dth ({dth} µs)"
            );
        }
        // the deleted keys are really gone
        assert_eq!(db.get(0).unwrap(), None);
        assert_eq!(db.get(995).unwrap(), None);
        assert!(db.get(3).unwrap().is_some());
    }

    #[test]
    fn durable_engine_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lethe-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = LetheBuilder::new()
                .buffer(64, 4, 64)
                .size_ratio(4)
                .open(&dir)
                .unwrap();
            for k in 0..100u64 {
                db.put(k, k, format!("persisted-{k}")).unwrap();
            }
            // do not flush: the data only lives in the WAL
        }
        {
            let db = LetheBuilder::new()
                .buffer(64, 4, 64)
                .size_ratio(4)
                .open(&dir)
                .unwrap();
            assert_eq!(db.get(7).unwrap(), Some(Bytes::from("persisted-7")));
            assert_eq!(db.get(1000).unwrap(), None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
