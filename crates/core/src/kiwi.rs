//! KiWi — Key Weaving Storage Layout analysis helpers (paper §4.2).
//!
//! The mechanics of the interweaved layout (delete tiles, per-page Bloom
//! filters, delete fence pointers, full/partial page drops) live in the
//! `lethe-lsm` crate because every file of the tree is stored that way
//! (`h = 1` is the classic layout). This module adds the KiWi-specific
//! *planning and accounting* layer:
//!
//! * [`plan_secondary_delete`] predicts, from fence metadata alone and
//!   without touching the device, how many pages a secondary range delete
//!   would fully drop, partially rewrite or leave untouched — the quantity
//!   plotted in Figure 6(H) and 6(L).
//! * [`metadata_overhead_bytes`] evaluates the memory-overhead expression of
//!   §4.2.3 (`#delete_tiles · (sizeof(S) + h · (sizeof(D) − sizeof(S)))`
//!   relative to the state of the art).
//! * [`hash_cost_multiplier`] captures the CPU overhead of probing per-page
//!   filters (`L·h` probes for zero-result lookups, `L·h/4` on average for
//!   existing keys — §4.2.4).

use lethe_lsm::tree::LsmTree;
use lethe_storage::{DeleteKey, PageCoverage};

/// Predicted outcome of a secondary range delete, in pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropPlan {
    /// Pages whose whole delete-key range falls inside the deleted range:
    /// they would be dropped without being read.
    pub full_drops: u64,
    /// Pages straddling a range boundary: they would be read, filtered and
    /// rewritten.
    pub partial_drops: u64,
    /// Pages unaffected by the delete.
    pub untouched: u64,
}

impl DropPlan {
    /// Total pages considered.
    pub fn total_pages(&self) -> u64 {
        self.full_drops + self.partial_drops + self.untouched
    }

    /// Fraction of *affected* pages that can be dropped without a read
    /// (the y-axis of Figure 6(H)); 0 when nothing is affected.
    pub fn full_drop_fraction(&self) -> f64 {
        let affected = self.full_drops + self.partial_drops;
        if affected == 0 {
            0.0
        } else {
            self.full_drops as f64 / affected as f64
        }
    }

    /// Page I/Os this plan would cost: each partial drop is one read plus one
    /// write; full drops are free.
    pub fn io_cost_pages(&self) -> u64 {
        self.partial_drops * 2
    }
}

/// Walks the tree's fence metadata and predicts the page-level outcome of
/// deleting every entry whose delete key lies in `[d_lo, d_hi)`. Performs no
/// device I/O.
pub fn plan_secondary_delete(tree: &LsmTree, d_lo: DeleteKey, d_hi: DeleteKey) -> DropPlan {
    let mut plan = DropPlan::default();
    for level in tree.levels() {
        for run in &level.runs {
            for table in run.tables() {
                for tile in &table.tiles {
                    for idx in 0..tile.pages.len() {
                        match tile.delete_fences.coverage(idx, d_lo, d_hi) {
                            PageCoverage::Full => plan.full_drops += 1,
                            PageCoverage::Partial => plan.partial_drops += 1,
                            PageCoverage::None => plan.untouched += 1,
                        }
                    }
                }
            }
        }
    }
    plan
}

/// The extra in-memory metadata KiWi keeps relative to the state of the art
/// (paper §4.2.3):
///
/// `KiWi_mem − SoA_mem = #delete_tiles · (sizeof(S) + h·(sizeof(D) − sizeof(S)))`
///
/// where the state of the art keeps one sort-key fence per page and KiWi keeps
/// one sort-key fence per tile plus one delete-key fence per page. A negative
/// result means KiWi's metadata is *smaller* (possible when
/// `sizeof(D) < sizeof(S)`).
pub fn metadata_overhead_bytes(
    num_entries: u64,
    entries_per_page: usize,
    pages_per_tile: usize,
    sizeof_sort_key: usize,
    sizeof_delete_key: usize,
) -> i64 {
    let b = entries_per_page.max(1) as u64;
    let h = pages_per_tile.max(1) as u64;
    let delete_tiles = num_entries.div_ceil(b * h);
    let s = sizeof_sort_key as i64;
    let d = sizeof_delete_key as i64;
    delete_tiles as i64 * (s + h as i64 * (d - s))
}

/// CPU-cost multiplier of KiWi lookups relative to the state of the art
/// (paper §4.2.4): a zero-result lookup probes `h` per-page filters per level
/// instead of one; an existing-key lookup stops after `h/4` pages on average
/// within the terminal tile.
pub fn hash_cost_multiplier(pages_per_tile: usize, zero_result: bool) -> f64 {
    let h = pages_per_tile.max(1) as f64;
    if zero_result {
        h
    } else {
        (h / 4.0).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lethe_lsm::compaction::{FileSelection, SaturationPolicy};
    use lethe_lsm::config::{LsmConfig, SecondaryDeleteMode};
    use lethe_storage::{InMemoryBackend, LogicalClock};

    fn build_tree(h: usize, n: u64, correlated: bool) -> LsmTree {
        let mut cfg = LsmConfig::small_for_test();
        cfg.pages_per_delete_tile = h;
        cfg.max_pages_per_file = h * 4;
        cfg.secondary_delete_mode = SecondaryDeleteMode::KiwiPageDrops;
        let mut tree = LsmTree::new(
            cfg,
            InMemoryBackend::new_shared(),
            LogicalClock::new(),
            Box::new(SaturationPolicy::new(FileSelection::MinOverlap)),
        )
        .unwrap();
        for k in 0..n {
            let d = if correlated { k } else { (k * 7919) % n };
            tree.put(k, d, Bytes::from(vec![b'v'; 16])).unwrap();
        }
        tree.flush().unwrap();
        tree.maintain().unwrap();
        tree
    }

    #[test]
    fn plan_matches_execution() {
        let mut tree = build_tree(4, 2000, false);
        let plan = plan_secondary_delete(&tree, 0, 1000);
        assert!(plan.total_pages() > 0);
        assert!(plan.full_drops > 0, "{plan:?}");
        let stats = tree.secondary_range_delete(0, 1000).unwrap();
        assert_eq!(stats.full_page_drops, plan.full_drops, "plan {plan:?} vs actual {stats:?}");
        assert_eq!(stats.partial_page_drops, plan.partial_drops);
    }

    #[test]
    fn larger_tiles_drop_more_pages_fully() {
        let tree_h1 = build_tree(1, 2000, false);
        let tree_h8 = build_tree(8, 2000, false);
        let plan_h1 = plan_secondary_delete(&tree_h1, 0, 500);
        let plan_h8 = plan_secondary_delete(&tree_h8, 0, 500);
        assert!(
            plan_h8.full_drop_fraction() > plan_h1.full_drop_fraction(),
            "h=8 {plan_h8:?} should fully drop a larger fraction than h=1 {plan_h1:?}"
        );
        assert!(plan_h8.io_cost_pages() <= plan_h1.io_cost_pages());
    }

    #[test]
    fn correlated_keys_make_tiles_unnecessary() {
        // when sort and delete key are perfectly correlated the classic
        // layout already clusters deleted entries, so h=1 plans mostly full
        // drops too (paper Figure 6(L))
        let tree = build_tree(1, 2000, true);
        let plan = plan_secondary_delete(&tree, 0, 1000);
        assert!(plan.full_drop_fraction() > 0.8, "{plan:?}");
    }

    #[test]
    fn metadata_overhead_formula() {
        // equal key sizes: overhead is one sort key per tile
        let n = 1_000_000u64;
        let overhead = metadata_overhead_bytes(n, 4, 16, 8, 8);
        let tiles = n.div_ceil(4 * 16);
        assert_eq!(overhead, (tiles * 8) as i64);
        // smaller delete key than sort key can make KiWi cheaper
        let negative = metadata_overhead_bytes(n, 4, 16, 16, 4);
        assert!(negative < 0);
        // h = 1: overhead equals one delete key per page (fences on D added,
        // fences on S unchanged)
        let h1 = metadata_overhead_bytes(n, 4, 1, 8, 8);
        assert_eq!(h1, (n.div_ceil(4) * 8) as i64);
    }

    #[test]
    fn hash_multiplier_shapes() {
        assert_eq!(hash_cost_multiplier(1, true), 1.0);
        assert_eq!(hash_cost_multiplier(8, true), 8.0);
        assert_eq!(hash_cost_multiplier(8, false), 2.0);
        assert_eq!(hash_cost_multiplier(2, false), 1.0);
    }

    #[test]
    fn empty_plan_edge_cases() {
        let plan = DropPlan::default();
        assert_eq!(plan.full_drop_fraction(), 0.0);
        assert_eq!(plan.total_pages(), 0);
        assert_eq!(plan.io_cost_pages(), 0);
    }
}
