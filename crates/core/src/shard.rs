//! Sharded concurrent front-end: many [`Lethe`] shards behind one `&self` API.
//!
//! [`ShardedLethe`] scales the single-shard engine out the way industrial
//! LSM stores do: **shared-nothing sharding** for writes, **snapshot
//! isolation** for reads, and **background maintenance** for everything
//! expensive. The sort-key space is hash-partitioned across `N` independent
//! shards, each a complete `Lethe` engine (own memtable, own version set,
//! own FADE policy, own storage device).
//!
//! ## Threading model
//!
//! Three kinds of thread touch a shard, and only writers ever lock it:
//!
//! * **Readers** (`get`/`range`/`scan_by_delete_key`) go through the
//!   shard's [`TreeReader`]: they pin the current immutable version (one
//!   `Arc` clone) and read the shared memtables under brief read locks —
//!   no shard lock, so a reader is *never* blocked by a writer, a flush or
//!   a compaction, and never observes a half-committed version.
//! * **Writers** (`put`/`write`/`delete`/`delete_range`) take the shard's
//!   ranked [`lethe_sync::Mutex`] for the WAL append + memtable insert only. A
//!   full buffer is *frozen*, not flushed: the writer returns immediately
//!   and the worker persists it. Backpressure replaces the old inline
//!   compact-to-completion loop: once level 0 accumulates
//!   [`LsmConfig::l0_slowdown_runs`] runs the writer yields, and at
//!   [`LsmConfig::l0_stall_runs`] (or a full buffer behind an unflushed
//!   frozen one) it blocks until the worker catches up.
//!
//!   Puts and [`WriteBatch`]es go through the shard's **group-commit
//!   queue**: the writer that joins an empty queue is the elected *leader*;
//!   everyone who joins while a leader is active is a *follower* and parks
//!   on the queue's condvar without ever touching the shard lock. The
//!   leader takes the shard lock once and drains the queue in convoys —
//!   stages every joined request as its own WAL frame, pays **one**
//!   durability barrier for the combined tail, applies the requests in
//!   order, posts each outcome and wakes the followers — looping until the
//!   queue is empty (requests that arrive mid-fsync are simply the next
//!   convoy). Under `SyncPolicy::Always` the fsync count therefore scales
//!   with commit convoys, not with records.
//! * **One [`Compactor`] worker per shard** drains flushes and FADE/
//!   saturation compactions through the tree's plan → execute → apply
//!   cycle, holding the shard lock only for the cheap plan and apply
//!   phases; the merge I/O runs lock-free against pinned files.
//!
//! Foreground structural operations (secondary range deletes, white-box
//! [`ShardedLethe::with_shard`] access) pause the worker first so exactly
//! one thread at a time restructures a shard's tree.
//!
//! ## Semantics
//!
//! * `put`/`get`/`delete` route to the owning shard by a multiply-shift hash
//!   of the sort key.
//! * [`write`](ShardedLethe::write) applies a [`WriteBatch`] atomically.
//!   A batch confined to one shard is one WAL frame (crash- and
//!   reader-atomic); a batch spanning shards runs a two-phase commit over
//!   the per-shard WALs with the store's batch-commit log (`BATCHES`) as
//!   the commit point, so recovery never surfaces half a batch.
//! * `delete_range`/`range` fan out to every shard (hash partitioning
//!   scatters sort-key ranges) and `range` merges the per-shard results back
//!   into global sort-key order.
//! * Secondary (delete-key) operations — `scan_by_delete_key` and
//!   `delete_where_delete_key_in` — fan out to every shard and aggregate; the
//!   delete key is independent of the partitioning key, so every shard may
//!   hold qualifying entries.
//! * All shards share one [`LogicalClock`], so FADE's per-level TTLs and the
//!   delete persistence threshold `D_th` hold per shard against a single
//!   consistent notion of time; [`ShardedLethe::maintain`] wakes every
//!   shard's worker and waits for all of them to quiesce (the workers run
//!   concurrently — no shard blocks behind another).
//! * `stats`/`io_snapshot`/`snapshot_contents` aggregate the per-shard
//!   [`TreeStats`]/[`IoSnapshot`]/[`ContentSnapshot`] into one combined view.
//! * **Fan-out operations are not atomic snapshots.** Shards are visited
//!   one at a time, so a `range`/`scan_by_delete_key`/`stats` call that is
//!   concurrent with writers may observe some shards before and some after
//!   a given write — e.g. see a writer's second put but not its first when
//!   the two route to different shards. Per-key operations are always
//!   consistent; when a point-in-time multi-shard view is required, take a
//!   [`ShardedLethe::snapshot`]: it fences every shard at one shared
//!   seqnum (no batch straddles it) and serves `get`/`range`/`iter_range`/
//!   `scan_by_delete_key` at that instant for as long as the handle lives.
//! * [`ShardedLethe::checkpoint`] streams a pinned snapshot into a target
//!   directory as a self-contained store — an online backup taken while
//!   writers continue — which [`Lethe::restore`] reopens after verifying
//!   the checkpoint's completeness marker.
//!
//! Each shard owns a full-size write buffer: an `N`-shard store has `N×` the
//! configured buffer memory. Divide `buffer_pages` by the shard count if a
//! fixed total memory budget matters.
//!
//! ```
//! use lethe_core::{ShardedLethe, ShardedLetheBuilder};
//! use std::thread;
//!
//! let db = ShardedLetheBuilder::new()
//!     .shards(4)
//!     .buffer(8, 4, 64)
//!     .size_ratio(4)
//!     .delete_persistence_threshold_secs(60.0)
//!     .build()
//!     .unwrap();
//!
//! // &self API: share the engine across threads without any external lock
//! thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let db = &db;
//!         s.spawn(move || {
//!             for k in (t * 100)..(t * 100 + 100) {
//!                 db.put(k, k, format!("v{k}")).unwrap();
//!             }
//!         });
//!     }
//! });
//! assert_eq!(db.get(123).unwrap().unwrap(), &b"v123"[..]);
//! assert_eq!(db.range(0, 400).unwrap().len(), 400);
//!
//! // stream a long scan without materialising it: page through the first 10
//! let page: Vec<_> = db.iter_range(0, 400).take(10).map(|r| r.unwrap()).collect();
//! assert_eq!(page.len(), 10);
//! ```

use crate::compactor::Compactor;
use crate::engine::{Lethe, LetheBuilder};
use crate::fade::SaturationSelection;
use crate::tuning::WorkloadProfile;
use bytes::Bytes;
use lethe_lsm::batch::WriteBatch;
use lethe_lsm::config::{LsmConfig, MergePolicy};
use lethe_lsm::snapshot::SnapshotTracker;
use lethe_lsm::sstable::{SecondaryDeleteStats, SsTable};
use lethe_lsm::stats::{ContentSnapshot, TreeStats};
use lethe_lsm::tree::{MaintenanceMode, RangeIter, TreeReader, TreeSnapshot};
use lethe_storage::{
    write_marker, BatchCommitLog, BatchOp, CacheSnapshot, CheckpointMarker,
    DeleteKey, Entry, FileBackend, IoSnapshot, LogicalClock, Manifest, ManifestState, PageCache,
    Result, SeqNum, SortKey, StorageBackend, StorageError, Timestamp,
};
use lethe_storage::barrier;
use lethe_sync::{Condvar, LockRank, Mutex};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Builder for a [`ShardedLethe`] engine.
///
/// Wraps a [`LetheBuilder`] (every single-shard knob is re-exposed) plus the
/// one sharding knob: [`shards`](ShardedLetheBuilder::shards).
#[derive(Debug, Clone)]
pub struct ShardedLetheBuilder {
    inner: LetheBuilder,
    shards: usize,
    /// Deferred Equation (3) tuning request `(profile, total expected
    /// entries)`: resolved against the *final* shard count at build time so
    /// the builder is order-independent.
    tune: Option<(WorkloadProfile, u64)>,
    /// Copy of the crash fail point (if any) so [`open`](Self::open) can arm
    /// the store-wide batch-commit log with the same shared countdown as the
    /// per-shard WALs, manifests and backends.
    failpoint: Option<lethe_storage::FailPoint>,
}

impl Default for ShardedLetheBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedLetheBuilder {
    /// Starts from the single-shard reference configuration with 4 shards.
    pub fn new() -> Self {
        ShardedLetheBuilder { inner: LetheBuilder::new(), shards: 4, tune: None, failpoint: None }
    }

    /// Wraps an already-configured single-shard builder.
    pub fn from_builder(inner: LetheBuilder) -> Self {
        ShardedLetheBuilder { inner, shards: 4, tune: None, failpoint: None }
    }

    /// Sets the number of shards (clamped to at least 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Sets the delete persistence threshold `D_th` in seconds of logical
    /// time (applies to every shard).
    pub fn delete_persistence_threshold_secs(mut self, secs: f64) -> Self {
        self.inner = self.inner.delete_persistence_threshold_secs(secs);
        self
    }

    /// Sets the delete persistence threshold in microseconds of logical time.
    pub fn delete_persistence_threshold_micros(mut self, micros: Timestamp) -> Self {
        self.inner = self.inner.delete_persistence_threshold_micros(micros);
        self
    }

    /// Sets the delete-tile granularity `h` (pages per delete tile).
    /// Last call wins: this cancels any earlier
    /// [`tune_delete_tiles_for`](Self::tune_delete_tiles_for) request.
    pub fn delete_tile_pages(mut self, h: usize) -> Self {
        self.tune = None;
        self.inner = self.inner.delete_tile_pages(h);
        self
    }

    /// Derives the delete-tile granularity from a workload description using
    /// Equation (3). `expected_entries` is the total across all shards; each
    /// shard is tuned for its `1/N` slice. The tuning is deferred to
    /// [`build`](Self::build)/[`open`](Self::open) so it always uses the
    /// final shard count, regardless of method-call order.
    pub fn tune_delete_tiles_for(mut self, profile: &WorkloadProfile, expected_entries: u64) -> Self {
        self.tune = Some((*profile, expected_entries));
        self
    }

    /// The per-shard builder with any deferred tuning resolved against the
    /// final shard count.
    fn resolved_inner(&self) -> LetheBuilder {
        match &self.tune {
            Some((profile, total)) => {
                let per_shard = (total / self.shards.max(1) as u64).max(1);
                self.inner.clone().tune_delete_tiles_for(profile, per_shard)
            }
            None => self.inner.clone(),
        }
    }

    /// Sets the size ratio `T`.
    pub fn size_ratio(mut self, t: usize) -> Self {
        self.inner = self.inner.size_ratio(t);
        self
    }

    /// Sets the per-shard buffer geometry: pages, entries per page and entry
    /// size.
    pub fn buffer(mut self, pages: usize, entries_per_page: usize, entry_size: usize) -> Self {
        self.inner = self.inner.buffer(pages, entries_per_page, entry_size);
        self
    }

    /// Sets the Bloom filter budget in bits per entry.
    pub fn bits_per_key(mut self, bits: f64) -> Self {
        self.inner = self.inner.bits_per_key(bits);
        self
    }

    /// Selects leveling or tiering.
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.inner = self.inner.merge_policy(policy);
        self
    }

    /// Selects the compaction strategy every shard runs; see
    /// [`LetheBuilder::compaction_strategy`]. The tiered strategies switch
    /// the merge policy to tiering, and under date-tiered each shard retires
    /// its own wholly-expired windows via whole-file drops (the combined
    /// [`TreeStats::whole_file_drops`](lethe_lsm::stats::TreeStats) counter
    /// sums them across shards).
    pub fn compaction_strategy(mut self, strategy: lethe_lsm::CompactionStrategy) -> Self {
        self.inner = self.inner.compaction_strategy(strategy);
        self
    }

    /// Sets the ingestion rate `I` (entries per second of logical time).
    pub fn ingestion_rate(mut self, entries_per_sec: u64) -> Self {
        self.inner = self.inner.ingestion_rate(entries_per_sec);
        self
    }

    /// Sets the secondary optimisation goal of saturation-driven compactions.
    pub fn saturation_selection(mut self, selection: SaturationSelection) -> Self {
        self.inner = self.inner.saturation_selection(selection);
        self
    }

    /// Sets when every shard's write-ahead log fsyncs appends (durable
    /// stores default to fsync-per-append; see
    /// [`LetheBuilder::wal_sync_policy`]).
    pub fn wal_sync_policy(mut self, policy: lethe_storage::SyncPolicy) -> Self {
        self.inner = self.inner.wal_sync_policy(policy);
        self
    }

    /// Sets the **total** block-cache budget in bytes, shared by every shard
    /// (`0`, the default, disables caching). One [`PageCache`] is created at
    /// build time and handed to all shards, so hot shards naturally take a
    /// larger slice of the budget; size it for the whole store, not per
    /// shard.
    pub fn block_cache_bytes(mut self, bytes: usize) -> Self {
        self.inner = self.inner.block_cache_bytes(bytes);
        self
    }

    /// If `true`, every shard warms the shared block cache with its flush/
    /// compaction output pages as they are written.
    pub fn warm_block_cache_on_write(mut self, warm: bool) -> Self {
        self.inner = self.inner.warm_block_cache_on_write(warm);
        self
    }

    /// Shares an existing [`PageCache`] with every shard of this store —
    /// and, because the cache keys entries per device, with whatever *other*
    /// stores also hold it — instead of creating a private cache at build
    /// time. Implies caching regardless of `block_cache_bytes`.
    pub fn shared_block_cache(mut self, cache: Arc<PageCache>) -> Self {
        self.inner = self.inner.shared_block_cache(cache);
        self
    }

    /// Attaches one crash-injection fail point to the durable components of
    /// *every* shard opened by [`ShardedLetheBuilder::open`] (testing aid;
    /// the clones share a single countdown, so the injected failure fires
    /// exactly once across the whole store).
    pub fn crash_failpoint(mut self, fp: lethe_storage::FailPoint) -> Self {
        self.failpoint = Some(fp.clone());
        self.inner = self.inner.crash_failpoint(fp);
        self
    }

    /// Overrides the low-level configuration applied to every shard.
    /// Last call wins: this cancels any earlier
    /// [`tune_delete_tiles_for`](Self::tune_delete_tiles_for) request (the
    /// supplied config's `pages_per_delete_tile` is authoritative).
    pub fn with_config(mut self, config: LsmConfig) -> Self {
        self.tune = None;
        self.inner = self.inner.with_config(config);
        self
    }

    /// The per-shard configuration being built.
    pub fn config(&self) -> &LsmConfig {
        self.inner.config()
    }

    /// Builds the sharded engine on per-shard in-memory simulated devices
    /// sharing one logical clock.
    pub fn build(self) -> Result<ShardedLethe> {
        let clock = LogicalClock::new();
        let (inner, cache) = self.shared_cache_inner();
        // one seqnum space across all shards: a cross-shard batch commits
        // under one consecutive seqnum range, and a snapshot fence is one
        // number covering the whole store. One snapshot tracker likewise:
        // a registered fence gates tombstone GC in every shard at once.
        let seqnums = Arc::new(AtomicU64::new(1));
        let snapshots = Arc::new(SnapshotTracker::new());
        let inner = inner
            .seqnum_allocator(Arc::clone(&seqnums))
            .snapshot_tracker(Arc::clone(&snapshots));
        let mut shards = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            let engine = inner
                .clone()
                .build_on(lethe_storage::InMemoryBackend::new_shared(), clock.clone())?;
            shards.push(Shard::spawn(engine, i));
        }
        Ok(ShardedLethe {
            shards,
            clock,
            cache,
            batch_log: None,
            manifest_fsyncs: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            slowdowns: AtomicU64::new(0),
            seqnums,
            snapshots,
            snapshot_registry: Arc::new(Mutex::new(LockRank::SnapshotRegistry, HashMap::new())),
            snapshot_ids: AtomicU64::new(1),
            failpoint: self.failpoint,
        })
    }

    /// Resolves the per-shard builder and the **one** cache instance every
    /// shard will share, through [`LetheBuilder::resolve_cache`]'s policy
    /// (an externally supplied cache wins, otherwise a private one is
    /// created when `block_cache_bytes > 0`); the resolved cache is pinned
    /// back onto the builder so every shard wraps the same instance.
    fn shared_cache_inner(&self) -> (LetheBuilder, Option<Arc<PageCache>>) {
        let mut inner = self.resolved_inner();
        let cache = inner.resolve_cache();
        if let Some(c) = &cache {
            inner = inner.shared_block_cache(Arc::clone(c));
        }
        (inner, cache)
    }

    /// Opens (or creates) a durable sharded engine rooted at `dir`. Each
    /// shard gets a namespaced data file, write-ahead log and manifest in
    /// the shared directory (`shard-000.data`/`shard-000.wal`/
    /// `shard-000.manifest`, `shard-001.…`), each shard recovers its own
    /// manifest + WAL on open, and all shards share one logical clock.
    /// Re-opening with a different shard count than the store was created
    /// with is rejected (routing is a function of the count), as is a store
    /// with committed shard state but no readable `SHARDS` super-manifest —
    /// both would otherwise silently misroute keys.
    pub fn open(self, dir: impl AsRef<Path>) -> Result<ShardedLethe> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        validate_shard_manifest(dir, self.shards)?;
        // the batch-commit log opens first: WAL replay consults the
        // committed-id set to decide which prepared cross-shard slices apply
        let mut batch_log = BatchCommitLog::open(dir.join("BATCHES"))?;
        if let Some(fp) = &self.failpoint {
            batch_log = batch_log.with_failpoint(fp.clone());
        }
        let batch_log = Arc::new(batch_log);
        let clock = LogicalClock::new();
        let (inner, cache) = self.shared_cache_inner();
        let seqnums = Arc::new(AtomicU64::new(1));
        let snapshots = Arc::new(SnapshotTracker::new());
        let inner = inner
            .seqnum_allocator(Arc::clone(&seqnums))
            .snapshot_tracker(Arc::clone(&snapshots))
            .committed_batches(batch_log.committed());
        let mut engines = Vec::with_capacity(self.shards);
        let mut live_ids = HashSet::new();
        for i in 0..self.shards {
            let engine = inner.clone().open_named(dir, &format!("shard-{i:03}"), clock.clone())?;
            live_ids.extend(engine.tree().wal_batch_ids().iter().copied());
            engines.push(engine);
        }
        // rolled-back prepared frames stay in the shard WALs after recovery
        // (nothing rewrites a WAL on open), so the id allocator — rebuilt
        // from committed records only — must be advanced past every id the
        // WALs still hold: reusing one for a batch that then commits would
        // retroactively commit the stale slice and resurrect part of an
        // aborted batch on the next recovery
        if let Some(max) = live_ids.iter().copied().max() {
            batch_log.bump_next_id(max + 1);
        }
        // commit records whose batch no WAL references any more have no
        // reader left (the slices were flushed and truncated away): compact
        // them out so the log is bounded by in-flight batches
        batch_log.retain(&live_ids)?;
        // the super-manifest is written only once every shard opened
        // successfully (a failed open never pins a shard count for a store
        // that was never created), and atomically + fsync'd: once a client
        // can acknowledge writes, the recorded count must survive a crash
        let manifest_fsyncs = AtomicU64::new(0);
        write_shard_manifest(dir, self.shards, &manifest_fsyncs)?;
        Ok(ShardedLethe {
            shards: engines.into_iter().enumerate().map(|(i, e)| Shard::spawn(e, i)).collect(),
            clock,
            cache,
            batch_log: Some(batch_log),
            manifest_fsyncs,
            stalls: AtomicU64::new(0),
            slowdowns: AtomicU64::new(0),
            seqnums,
            snapshots,
            snapshot_registry: Arc::new(Mutex::new(LockRank::SnapshotRegistry, HashMap::new())),
            snapshot_ids: AtomicU64::new(1),
            failpoint: self.failpoint,
        })
    }
}

/// Durably records the shard count: write-to-temporary, atomic rename,
/// parent-directory fsync. Both barriers charge `fsyncs` so the store's
/// [`IoSnapshot`] accounts for them.
fn write_shard_manifest(dir: &Path, shards: usize, fsyncs: &AtomicU64) -> Result<()> {
    use std::io::Write;
    let path = dir.join("SHARDS");
    let tmp = dir.join("SHARDS.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(format!("{shards}\n").as_bytes())?;
        barrier::sync_all_counted(&f, fsyncs)?;
    }
    std::fs::rename(&tmp, &path)?;
    barrier::fsync_dir_counted(&path, fsyncs)?;
    Ok(())
}

/// Validates the recorded shard count of a durable store, if any: routing is
/// a function of the shard count, so re-opening with a different `N` would
/// silently misroute keys.
///
/// A directory with per-shard *manifests* (i.e. committed durable state) but
/// no `SHARDS` super-manifest is partial shard state — someone lost or
/// deleted the routing record — and is rejected rather than guessed at.
/// Leftover data/WAL files without manifests are tolerated: they can only
/// come from a store that never acknowledged a write under a committed shard
/// count (`SHARDS` is durably written before `open` returns).
fn validate_shard_manifest(dir: &Path, shards: usize) -> Result<()> {
    use lethe_storage::StorageError;
    let path = dir.join("SHARDS");
    match std::fs::read_to_string(&path) {
        Ok(raw) => {
            let recorded: usize = raw.trim().parse().map_err(|_| {
                StorageError::Corruption(format!("unreadable shard manifest {path:?}: {raw:?}"))
            })?;
            if recorded != shards {
                return Err(StorageError::Corruption(format!(
                    "store at {dir:?} was created with {recorded} shards, re-opened with {shards}"
                )));
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let mut orphaned: Vec<String> = Vec::new();
            for entry in std::fs::read_dir(dir)? {
                let name = entry?.file_name().to_string_lossy().into_owned();
                if name.starts_with("shard-") && name.ends_with(".manifest") {
                    orphaned.push(name);
                }
            }
            if !orphaned.is_empty() {
                orphaned.sort();
                return Err(StorageError::Corruption(format!(
                    "store at {dir:?} has committed shard state ({}) but no SHARDS \
                     super-manifest; refusing to guess a shard count that could \
                     misroute every key",
                    orphaned.join(", ")
                )));
            }
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

/// One shard: the engine behind its write lock, the lock-free read handle,
/// the background maintenance worker, and the backpressure thresholds
/// copied out of the engine's configuration.
struct Shard {
    engine: Arc<Mutex<Lethe>>,
    reader: TreeReader,
    worker: Compactor,
    /// Group-commit queue: the writer that joins it empty leads, everyone
    /// else follows; see [`CommitQueue`].
    queue: CommitQueue,
    slowdown_runs: usize,
    stall_runs: usize,
}

impl Shard {
    /// Switches `engine` to background maintenance, wraps it behind its
    /// lock, and spawns the worker. `index` is the shard's position in the
    /// store: engine locks share one rank, so cross-shard writers must take
    /// them in ascending index order, which the ranked mutex enforces
    /// through its same-rank acquisition order.
    fn spawn(mut engine: Lethe, index: usize) -> Shard {
        engine.set_maintenance_mode(MaintenanceMode::Background);
        let reader = engine.reader();
        let slowdown_runs = engine.config().l0_slowdown_runs;
        let stall_runs = engine.config().l0_stall_runs;
        let engine = Arc::new(Mutex::with_order(LockRank::Engine, index as u64, engine));
        let worker = Compactor::spawn(Arc::clone(&engine));
        Shard { engine, reader, worker, queue: CommitQueue::new(), slowdown_runs, stall_runs }
    }
}

/// The group-commit queue of one shard (the RocksDB write-group idiom).
///
/// A writer joins by pushing its request under the state lock; if no leader
/// is active at that moment it becomes the leader, otherwise it parks on
/// `follower_cv` until a leader posts its outcome. Followers never touch
/// the engine lock at all — the leader acquires it once and serves convoys
/// until the queue drains, so the per-writer cost under contention is one
/// condvar round-trip instead of a mutex handoff, and every request that
/// arrives while the leader is inside an fsync lands in the next convoy.
struct CommitQueue {
    state: Mutex<CommitQueueState>,
    /// Followers wait here; the leader locks `state` (empty critical
    /// section) before notifying, so a follower that just saw its slot
    /// empty is guaranteed to be parked before the wakeup fires.
    follower_cv: Condvar,
}

struct CommitQueueState {
    pending: Vec<PendingWrite>,
    leader_active: bool,
}

impl CommitQueue {
    fn new() -> CommitQueue {
        CommitQueue {
            state: Mutex::new(
                LockRank::CommitQueueState,
                CommitQueueState { pending: Vec::new(), leader_active: false },
            ),
            follower_cv: Condvar::new(),
        }
    }

    /// Joins the queue with `ops`; returns the outcome slot and whether the
    /// calling writer must lead.
    fn join(&self, ops: Vec<BatchOp>) -> (Arc<Mutex<Option<Result<()>>>>, bool) {
        let slot = Arc::new(Mutex::new(LockRank::CommitSlot, None));
        let mut state = self.state.lock();
        state.pending.push(PendingWrite { ops, slot: Arc::clone(&slot) });
        let lead = !state.leader_active;
        state.leader_active = true;
        (slot, lead)
    }
}

/// One writer's ops awaiting a group-commit leader, plus the slot the leader
/// posts the outcome into.
struct PendingWrite {
    ops: Vec<BatchOp>,
    slot: Arc<Mutex<Option<Result<()>>>>,
}

/// The shard (out of `n`) owning `key`: multiply-shift hash (Fibonacci
/// hashing), shared by the live store and its snapshot handles so both
/// route a key to the same captured shard view.
fn shard_of_key(key: SortKey, n: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % n
}

/// Whether `ops` contains a secondary range delete — the one batch op that
/// restructures the tree instead of appending to the memtable.
fn has_secondary_delete(ops: &[BatchOp]) -> bool {
    ops.iter().any(|op| matches!(op, BatchOp::SecondaryDelete { .. }))
}

/// Mirrors a group-level failure to every waiter in the group.
/// [`StorageError`] is not `Clone` (it wraps `std::io::Error`), so each
/// waiter gets a fresh error carrying the leader's message; an injected
/// crash stays [`StorageError::Injected`] so the crash harness recognises it.
fn mirror_error(e: &StorageError) -> StorageError {
    match e {
        StorageError::Injected => StorageError::Injected,
        other => StorageError::Io(std::io::Error::other(format!("group commit failed: {other}"))),
    }
}

/// Commits one drained group under the engine lock: stages every request as
/// its own WAL frame, pays **one** durability barrier for the combined tail,
/// then applies each request to the memtable and posts its outcome.
///
/// A request that fails to stage fails alone (its frame never reached the
/// log); a failed group fsync fails every staged request, since none of them
/// can claim durability. Either way every drained slot is filled.
fn commit_group(engine: &mut Lethe, pending: Vec<PendingWrite>) {
    if pending.is_empty() {
        return;
    }
    let tree = engine.tree_mut();
    let mut staged = Vec::with_capacity(pending.len());
    for req in pending {
        match tree.stage_batch(&req.ops, None) {
            Ok(ts) => staged.push((req, ts)),
            Err(e) => *req.slot.lock() = Some(Err(e)),
        }
    }
    if staged.is_empty() {
        return;
    }
    if let Err(e) = tree.wal_commit() {
        for (req, _) in &staged {
            *req.slot.lock() = Some(Err(mirror_error(&e)));
        }
        return;
    }
    for (PendingWrite { ops, slot }, ts) in staged {
        let outcome = tree.apply_batch(ops, ts);
        *slot.lock() = Some(outcome);
    }
}

/// Write-backpressure event counters; see [`ShardedLethe::backpressure`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackpressureStats {
    /// Writes that blocked until the worker made progress (full buffer
    /// behind an unflushed frozen one, or level 0 at the stall threshold).
    pub stalls: u64,
    /// Writes that yielded because level 0 reached the slowdown threshold.
    pub slowdowns: u64,
}

/// A concurrent, hash-sharded Lethe engine with a `&self` API.
///
/// See the [module docs](self) for the threading model. Construct one
/// through [`ShardedLetheBuilder`]. Dropping the store shuts down and joins
/// every shard's background worker.
pub struct ShardedLethe {
    shards: Vec<Shard>,
    clock: LogicalClock,
    /// The block cache shared by every shard, if one was configured.
    cache: Option<Arc<PageCache>>,
    /// The store-wide commit point for cross-shard batches; `None` for
    /// in-memory stores, which have no crash to protect against.
    batch_log: Option<Arc<BatchCommitLog>>,
    /// Durability barriers issued for the `SHARDS` super-manifest.
    manifest_fsyncs: AtomicU64,
    stalls: AtomicU64,
    slowdowns: AtomicU64,
    /// The store-wide seqnum allocator every shard draws from. Its value
    /// read while **all** engine locks are held is a consistent snapshot
    /// fence: no write anywhere in the store can be in flight at that
    /// instant, so every seqnum below the fence is fully applied and every
    /// one at or above it is entirely absent.
    seqnums: Arc<AtomicU64>,
    /// The live-snapshot tracker shared with every shard's tree; registered
    /// fences gate tombstone GC and page reclamation store-wide.
    snapshots: Arc<SnapshotTracker>,
    /// Live snapshot state by handle id. Holding the only strong `Arc` here
    /// (handles hold `Weak`s) lets [`ShardedLethe::expire_snapshots`]
    /// release pinned pages even when a stale handle is still around — the
    /// handle then fails closed instead of reading reclaimed pages.
    snapshot_registry: Arc<Mutex<HashMap<u64, Arc<SnapshotInner>>>>,
    snapshot_ids: AtomicU64,
    /// The crash fail point shared by every durable component (if any);
    /// retained so [`ShardedLethe::checkpoint`] arms the checkpoint target's
    /// backend, manifest and completeness marker with the same countdown.
    failpoint: Option<lethe_storage::FailPoint>,
}

// Compile-time proof of the headline property: the sharded front-end can be
// shared across threads by reference, no external synchronisation needed.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedLethe>();
};

impl ShardedLethe {
    /// Starts building a sharded engine.
    pub fn builder() -> ShardedLetheBuilder {
        ShardedLetheBuilder::new()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`: multiply-shift hash (Fibonacci hashing), so
    /// dense sequential key ranges spread evenly across shards.
    fn shard_of(&self, key: SortKey) -> usize {
        shard_of_key(key, self.shards.len())
    }

    /// Parks the calling writer while `shard` reports a stall condition
    /// (full buffer behind an unflushed frozen one, or level 0 at the stall
    /// threshold). If the worker twice completes a pass without clearing the
    /// condition (it hit an error, or the thresholds are configured below
    /// what the policy considers compactable), the writer proceeds anyway —
    /// the buffer overshoots rather than deadlocks, and the error surfaces
    /// at the next `maintain`/`persist`.
    fn backpressure_wait(&self, shard: &Shard) {
        let mut fruitless = 0u32;
        loop {
            let stalled =
                shard.reader.write_stalled() || shard.reader.l0_run_count() >= shard.stall_runs;
            if !stalled || fruitless >= 2 {
                return;
            }
            self.stalls.fetch_add(1, Ordering::Relaxed);
            let jobs_before = shard.worker.jobs_done();
            shard.worker.wait_for_progress();
            if shard.worker.jobs_done() == jobs_before {
                fruitless += 1;
            }
        }
    }

    /// Post-write worker nudge and stage-1 slowdown, shared by every write
    /// path: wakes the worker when there is a frozen buffer to flush or
    /// level 0 crossed the slowdown threshold, and yields the writer's
    /// scheduling slot inside the slowdown window.
    fn after_write(&self, shard: &Shard, frozen: bool) {
        let l0 = shard.reader.l0_run_count();
        if frozen || l0 >= shard.slowdown_runs {
            shard.worker.wake();
        }
        if l0 >= shard.slowdown_runs && l0 < shard.stall_runs {
            self.slowdowns.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        }
    }

    /// Runs one write operation against `shard` under its lock, applying
    /// write backpressure first and nudging the worker afterwards.
    fn write_to<R>(&self, shard: &Shard, op: impl FnOnce(&mut Lethe) -> Result<R>) -> Result<R> {
        self.backpressure_wait(shard);
        let mut engine = shard.engine.lock();
        let result = op(&mut engine)?;
        let frozen = engine.tree().has_frozen();
        drop(engine);
        self.after_write(shard, frozen);
        Ok(result)
    }

    /// Routes `ops` through `shard`'s group-commit queue; see the module
    /// docs. The caller blocks until a leader (possibly itself) has staged,
    /// fsynced and applied its request, and gets that request's outcome.
    fn group_write(&self, shard: &Shard, ops: Vec<BatchOp>) -> Result<()> {
        // a secondary range delete restructures the tree (KiWi page drops +
        // a version install), so — exactly like `delete_where_delete_key_in`
        // — park the worker for the whole request. The guard is taken before
        // the queue join and held until the outcome arrives, so whichever
        // leader applies this request finds the worker already parked. A
        // paused worker can't make the progress a stalled writer waits for,
        // so structural requests also skip stall backpressure (matching the
        // direct foreground path).
        let structural = has_secondary_delete(&ops);
        let _parked = structural.then(|| shard.worker.pause());
        if !structural {
            self.backpressure_wait(shard);
        }
        let (slot, lead) = shard.queue.join(ops);
        if lead {
            self.lead_commits(shard);
        } else {
            let mut state = shard.queue.state.lock();
            while slot.lock().is_none() {
                state = shard.queue.follower_cv.wait(state, &shard.queue.state);
            }
            drop(state);
        }
        let outcome = slot.lock().take();
        outcome.expect("a group-commit leader posts an outcome for every joined request")
    }

    /// Leader duty: under one engine-lock acquisition, commit convoys of
    /// queued requests until the queue is empty, waking followers after
    /// every convoy. The leader's own request is part of the first convoy
    /// (it joined before leading), so its slot is filled on return.
    fn lead_commits(&self, shard: &Shard) {
        let mut frozen = false;
        let mut engine = shard.engine.lock();
        loop {
            let pending = {
                let mut state = shard.queue.state.lock();
                if state.pending.is_empty() {
                    // resign while holding the state lock: the next joiner
                    // sees no active leader and takes over
                    state.leader_active = false;
                    break;
                }
                std::mem::take(&mut state.pending)
            };
            // no artificial delay to fatten convoys: followers woken by the
            // previous convoy's ack rejoin the queue while this convoy is
            // inside its fsync — that overlap is what grows groups
            commit_group(&mut engine, pending);
            frozen |= engine.tree().has_frozen();
            // the empty state critical section fences follower check-then-
            // wait: anyone who saw an unfilled slot is parked by now
            drop(shard.queue.state.lock());
            shard.queue.follower_cv.notify_all();
        }
        drop(engine);
        self.after_write(shard, frozen);
    }

    /// Inserts (or updates) `key` with an associated delete key and value.
    ///
    /// Durably logged through the owning shard's group-commit queue, so
    /// concurrent puts against one shard share WAL durability barriers; see
    /// the module docs.
    pub fn put(&self, key: SortKey, delete_key: DeleteKey, value: impl Into<Bytes>) -> Result<()> {
        let shard = &self.shards[self.shard_of(key)];
        let op = BatchOp::Put { sort_key: key, delete_key, value: value.into() };
        self.group_write(shard, vec![op])
    }

    /// Atomically applies a [`WriteBatch`]: all of its operations become
    /// durable and visible together or — across a crash — not at all.
    ///
    /// Ops route to their owning shards like the point API (secondary range
    /// deletes fan out to every shard). A batch whose ops all land in one
    /// shard is logged as a **single WAL frame** through that shard's
    /// group-commit queue: readers observe it all-or-nothing (its point ops
    /// apply under one memtable write guard) and recovery replays it
    /// all-or-nothing (a torn tail discards the whole frame). Unlike
    /// [`delete`](ShardedLethe::delete), batch deletes are never suppressed
    /// as blind.
    ///
    /// A batch spanning shards runs a two-phase commit on durable stores:
    /// every involved shard durably *prepares* its slice in its own WAL,
    /// then the store-wide batch-commit log records the batch id — that
    /// single fsync is the commit point — and only then do the slices apply,
    /// holding every involved shard's lock so no flush outruns an unapplied
    /// slice. Recovery rolls back prepared slices whose id never committed,
    /// so a crash anywhere leaves the batch fully applied or fully absent.
    /// In-memory stores ([`ShardedLetheBuilder::build`]) skip the protocol —
    /// they have no crash to protect against — and commit each slice through
    /// its shard's queue directly.
    ///
    /// # Errors
    ///
    /// An `Err` raised *before* the commit point means the batch did not
    /// (and never will) take effect. An `Err` raised *after* it — an
    /// in-memory apply failure on some shard — means the batch **is**
    /// durably committed: every slice whose apply succeeded is already
    /// visible, and the rest surface when the store is reopened (recovery
    /// replays the committed batch in full). Callers that cannot tolerate
    /// that window should treat such an error as fatal and restart.
    ///
    /// The weakly-consistent fan-out contract (module docs) still applies to
    /// *live* readers of a multi-shard batch: per-shard snapshots are pinned
    /// one at a time, so a concurrent scan may observe one shard's slice
    /// before another's. Single-shard batches are reader-atomic.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut slices: Vec<Vec<BatchOp>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for op in batch.into_ops() {
            match &op {
                BatchOp::Put { sort_key, .. } | BatchOp::Delete { sort_key } => {
                    let i = self.shard_of(*sort_key);
                    slices[i].push(op);
                }
                BatchOp::SecondaryDelete { .. } => {
                    // the delete key is independent of the partitioning key,
                    // so every shard may hold qualifying entries
                    for slice in &mut slices {
                        slice.push(op.clone());
                    }
                }
            }
        }
        let involved: Vec<usize> = (0..slices.len()).filter(|&i| !slices[i].is_empty()).collect();
        match involved.as_slice() {
            [] => Ok(()),
            [i] => self.group_write(&self.shards[*i], std::mem::take(&mut slices[*i])),
            _ => self.write_cross_shard(slices, involved),
        }
    }

    /// Two-phase commit of a batch spanning several shards; see
    /// [`ShardedLethe::write`].
    fn write_cross_shard(&self, mut slices: Vec<Vec<BatchOp>>, involved: Vec<usize>) -> Result<()> {
        let Some(log) = &self.batch_log else {
            // in-memory store: nothing survives a crash, so there is no
            // prepared state that could need rolling back
            for &i in &involved {
                self.group_write(&self.shards[i], std::mem::take(&mut slices[i]))?;
            }
            return Ok(());
        };
        // park the involved workers when the batch restructures trees (see
        // `group_write`); otherwise respect write backpressure before taking
        // any locks
        let structural = involved.iter().any(|&i| has_secondary_delete(&slices[i]));
        let _parked: Option<Vec<_>> =
            structural.then(|| involved.iter().map(|&i| self.shards[i].worker.pause()).collect());
        if !structural {
            for &i in &involved {
                self.backpressure_wait(&self.shards[i]);
            }
        }
        let id = log.allocate_id();
        // lock every involved shard in ascending index order (deadlock-free
        // against other cross-shard writers) and hold the locks through
        // prepare → commit → apply: no freeze/flush can truncate a prepared
        // frame out of a WAL before its slice is applied, so a committed id
        // always finds its slices — in the WALs or already flushed
        let mut guards: Vec<_> = involved.iter().map(|&i| self.shards[i].engine.lock()).collect();
        // prepare: durably log each shard's slice under the shared id. An
        // error aborts the batch — `id` never commits, and recovery rolls
        // the already-prepared slices back on every shard
        let mut stamps = Vec::with_capacity(involved.len());
        for (guard, &i) in guards.iter_mut().zip(&involved) {
            let tree = guard.tree_mut();
            // an abort between stage and commit is the designed 2PC failure path:
            // `id` never reaches the batch-commit log, so on the next recovery the
            // prepared slices roll back on every shard (see rollback_batch)
            // lint:allow(leak-paths): aborted ids are rolled back by recovery, not leaked
            let ts = tree.stage_batch(&slices[i], Some(id))?;
            tree.wal_commit()?;
            stamps.push(ts);
        }
        // commit point: one fsync in the store-wide batch-commit log
        log.commit(id)?;
        // apply: the batch is durable on every shard and will replay in
        // full on the next recovery no matter what happens below, so an
        // apply error must not abort the loop — skipping the remaining
        // slices would leave the batch half-visible to live readers while
        // a restart would surface all of it. Apply every slice, remember
        // the first error, and surface it after the fan-out: an `Err` from
        // here on means "committed, apply incomplete until restart", never
        // "rolled back" (see the `write` docs).
        let mut apply_err = None;
        for ((guard, &i), ts) in guards.iter_mut().zip(&involved).zip(stamps) {
            if let Err(e) = guard.tree_mut().apply_batch(std::mem::take(&mut slices[i]), ts) {
                apply_err.get_or_insert(e);
            }
        }
        let frozen: Vec<bool> = guards.iter().map(|g| g.tree().has_frozen()).collect();
        drop(guards);
        for (&i, frozen) in involved.iter().zip(frozen) {
            self.after_write(&self.shards[i], frozen);
        }
        match apply_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Point lookup — served lock-free from the owning shard's snapshot
    /// read surface; never blocked by writers, flushes or compactions.
    pub fn get(&self, key: SortKey) -> Result<Option<Bytes>> {
        self.shards[self.shard_of(key)].reader.get(key)
    }

    /// Point delete on the sort key. Returns `false` if the owning shard
    /// suppressed the delete as blind (the key cannot exist).
    pub fn delete(&self, key: SortKey) -> Result<bool> {
        let shard = &self.shards[self.shard_of(key)];
        self.write_to(shard, move |engine| engine.delete(key))
    }

    /// Range delete on the sort key over `[start, end)`. Hash partitioning
    /// scatters the range, so the tombstone fans out to every shard.
    pub fn delete_range(&self, start: SortKey, end: SortKey) -> Result<()> {
        for shard in &self.shards {
            self.write_to(shard, |engine| engine.delete_range(start, end))?;
        }
        Ok(())
    }

    /// Secondary range delete: removes every entry whose **delete key** lies
    /// in `[lo, hi)`. Fans out to every shard (the delete key is independent
    /// of the partitioning key) and returns the aggregated page-drop stats.
    ///
    /// A structural foreground operation: each shard's worker is paused (its
    /// in-flight job completes first) while that shard's pages are dropped,
    /// so the delete never races a background version install.
    pub fn delete_where_delete_key_in(
        &self,
        lo: DeleteKey,
        hi: DeleteKey,
    ) -> Result<SecondaryDeleteStats> {
        let mut total = SecondaryDeleteStats::default();
        for shard in &self.shards {
            let _parked = shard.worker.pause();
            let stats = shard.engine.lock().delete_where_delete_key_in(lo, hi)?;
            total.merge(&stats);
        }
        Ok(total)
    }

    /// Range lookup on the sort key over `[lo, hi)`: fans out to every
    /// shard's snapshot reader (no shard locks) and merges the per-shard
    /// results back into global sort-key order.
    ///
    /// Materialises the whole result; use
    /// [`iter_range`](ShardedLethe::iter_range) to stream large scans.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        self.iter_range(lo, hi).collect()
    }

    /// Streaming range scan over `[lo, hi)` across every shard: k-way merges
    /// the per-shard streaming cursors into one iterator of live
    /// `(key, value)` pairs in global sort-key order. Each shard's pages are
    /// decoded lazily as the iterator advances, so callers can page through
    /// arbitrarily large scans (backups, analytics, cursors-over-HTTP)
    /// without materialising results, and an early stop never reads the
    /// tail of any shard.
    ///
    /// Consistency matches `range`: each shard's snapshot is pinned when
    /// this is called (no shard locks taken), so the scan is unaffected by
    /// concurrent maintenance, but the per-shard snapshots are taken one
    /// after another — the usual weakly-consistent fan-out contract.
    pub fn iter_range(&self, lo: SortKey, hi: SortKey) -> ShardedRangeIter {
        let mut heads = Vec::with_capacity(self.shards.len());
        let mut pending_err = None;
        for shard in &self.shards {
            match shard.reader.iter_range(lo, hi) {
                Ok(iter) => {
                    let mut head = ShardHead { iter, next: None };
                    head.pull(&mut pending_err);
                    heads.push(head);
                }
                Err(e) => {
                    pending_err.get_or_insert(e);
                }
            }
        }
        ShardedRangeIter { heads, pending_err, done: false }
    }

    /// Secondary range lookup: every live entry whose delete key lies in
    /// `[lo, hi)`, across all shards, in sort-key order. Served from the
    /// per-shard snapshot readers without shard locks.
    pub fn scan_by_delete_key(&self, lo: DeleteKey, hi: DeleteKey) -> Result<Vec<Entry>> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            per_shard.push(shard.reader.secondary_range_scan(lo, hi)?);
        }
        Ok(merge_sorted_by_key(per_shard, |e: &Entry| e.sort_key))
    }

    /// Captures a consistent cross-shard point-in-time view of the whole
    /// store and returns a [`Snapshot`] handle reading at it.
    ///
    /// Every shard's engine lock is taken in ascending shard order (the
    /// same deadlock-free idiom cross-shard batch commits use), the shared
    /// seqnum allocator is read **once** under all of them as the
    /// snapshot's fence, and each shard's tree is captured. Because the
    /// engine locks are exactly where group-commit leaders, two-phase
    /// cross-shard commits and worker plan/apply phases serialise, no
    /// write — and in particular no multi-op batch — can straddle the
    /// fence: the snapshot observes each batch entirely or not at all,
    /// fixing the weakly-consistent fan-out contract of the live read
    /// path. The capture itself is cheap (per shard: one bounded memtable
    /// clone plus three `Arc` bumps), so writers stall only momentarily.
    ///
    /// The fence is registered with the store's [`SnapshotTracker`]:
    /// while the handle lives, tombstone drops that would discard history
    /// the snapshot still reads are deferred (FADE's accounting counts
    /// them in [`TreeStats::tombstone_gc_delayed`]), and the pinned
    /// versions defer page reclamation. Dropping the handle releases both.
    pub fn snapshot(&self) -> Snapshot {
        let guards: Vec<_> = self.shards.iter().map(|s| s.engine.lock()).collect();
        let fence = self.seqnums.load(Ordering::SeqCst);
        self.snapshots.register(fence);
        let shards: Vec<TreeSnapshot> = guards.iter().map(|g| g.tree().capture_snapshot()).collect();
        drop(guards);
        let inner = Arc::new(SnapshotInner {
            fence,
            shards,
            tracker: Arc::clone(&self.snapshots),
        });
        let id = self.snapshot_ids.fetch_add(1, Ordering::Relaxed);
        let handle = Snapshot {
            id,
            fence,
            inner: Arc::downgrade(&inner),
            registry: Arc::clone(&self.snapshot_registry),
            tracker: Arc::clone(&self.snapshots),
        };
        self.snapshot_registry.lock().insert(id, inner);
        handle
    }

    /// Number of snapshot handles currently pinning store state.
    pub fn live_snapshots(&self) -> usize {
        self.snapshot_registry.lock().len()
    }

    /// Forcibly releases every live snapshot, returning how many were
    /// expired. Their pinned buffers and versions are dropped (so deferred
    /// page reclamation and tombstone GC resume) and the tracker's
    /// lowest-freed watermark advances to the highest expired fence;
    /// outstanding [`Snapshot`] handles fail closed from now on instead of
    /// ever reading reclaimed state. An escape hatch for operators when a
    /// forgotten handle is pinning space — not part of normal snapshot
    /// lifecycle (dropping the handle is).
    pub fn expire_snapshots(&self) -> usize {
        let drained: Vec<Arc<SnapshotInner>> = {
            let mut registry = self.snapshot_registry.lock();
            let ids: Vec<u64> = registry.keys().copied().collect();
            ids.iter().filter_map(|id| registry.remove(id)).collect()
        };
        if let Some(max) = drained.iter().map(|inner| inner.fence).max() {
            self.snapshots.set_lowest_freed(max);
        }
        // dropping the last Arcs releases the tracker registrations and the
        // pinned versions (outside the registry lock)
        drained.len()
    }

    /// Streams a consistent point-in-time image of the whole store into
    /// `dir` — an **online backup** — and returns the completeness marker
    /// it committed. Writers, flushes and compactions continue throughout:
    /// the checkpoint pins its own [`Snapshot`] (released on return) and
    /// reads only captured state.
    ///
    /// The target directory becomes a self-contained single-shard store:
    /// the per-shard checkpoint streams (every entry at the fence, newest
    /// version per key, tombstones and delete keys retained) are k-way
    /// merged into fresh KiWi-laid-out tables on a fresh backend, a fresh
    /// manifest commits the table layout with `next_seqnum` at the fence,
    /// and **last** the checksummed `CHECKPOINT` marker is durably written
    /// — the commit point. A crash anywhere mid-stream leaves a directory
    /// without a valid marker, which [`Lethe::restore`] refuses: a torn
    /// checkpoint is detectably incomplete, never silently short.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<CheckpointMarker> {
        let snapshot = self.snapshot();
        self.checkpoint_at(&snapshot, dir)
    }

    /// Streams an already-held [`Snapshot`]'s view into `dir`; see
    /// [`ShardedLethe::checkpoint`]. Lets a caller read through the same
    /// snapshot it backed up (e.g. to verify the backup against the live
    /// view it captured).
    pub fn checkpoint_at(&self, snapshot: &Snapshot, dir: impl AsRef<Path>) -> Result<CheckpointMarker> {
        let inner = snapshot.pinned()?;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut backend = FileBackend::open_named(dir, "checkpoint")?;
        if let Some(fp) = &self.failpoint {
            backend.set_failpoint(fp.clone());
        }
        let backend: Arc<dyn StorageBackend> = Arc::new(backend);
        let config = self.shards[0].engine.lock().config().clone();
        // one source stream per shard; hash partitioning puts every sort
        // key in exactly one shard, so the pick-min merge needs no
        // cross-shard dedup
        let mut streams = Vec::with_capacity(inner.shards.len());
        let mut heads: Vec<Option<Entry>> = Vec::with_capacity(inner.shards.len());
        for shard in &inner.shards {
            let mut stream = shard.entry_merge()?;
            heads.push(stream.next_merged()?);
            streams.push(stream);
        }
        // range tombstones live outside the page stream; carry every one
        // visible at the fence in the first table's range-tombstone block
        // (their shadowing was already applied to the merged entries, so
        // re-applying it on restore is idempotent)
        let mut rts: Vec<Entry> = inner.shards.iter().flat_map(|s| s.all_range_tombstones()).collect();
        rts.sort_by_key(|e| (e.sort_key, e.seqnum));
        let oldest_tombstone_ts =
            inner.shards.iter().filter_map(|s| s.oldest_tombstone_ts()).min();
        let entries_per_file =
            (config.max_pages_per_file.max(1) * config.entries_per_page.max(1)).max(1);
        let created_at = self.clock.now();
        let mut files = Vec::new();
        let mut next_file_id = 1u64;
        loop {
            let mut chunk: Vec<Entry> = Vec::with_capacity(entries_per_file.min(1024));
            while chunk.len() < entries_per_file {
                let best = heads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, h)| h.as_ref().map(|e| (i, e.sort_key)))
                    .min_by_key(|&(_, k)| k);
                let Some((i, _)) = best else { break };
                if let Some(e) = heads[i].take() {
                    chunk.push(e);
                }
                heads[i] = streams[i].next_merged()?;
            }
            let chunk_rts = std::mem::take(&mut rts);
            if chunk.is_empty() && chunk_rts.is_empty() {
                break;
            }
            let holds_tombstones =
                !chunk_rts.is_empty() || chunk.iter().any(|e| e.is_point_tombstone());
            let table = SsTable::build(
                next_file_id,
                chunk,
                chunk_rts,
                created_at,
                if holds_tombstones { oldest_tombstone_ts } else { None },
                &config,
                backend.as_ref(),
            )?;
            files.push(table.describe());
            next_file_id += 1;
        }
        // every page durable before the manifest references it, the
        // manifest durable before the marker declares the stream complete
        backend.sync()?;
        let state = ManifestState {
            next_file_id,
            next_seqnum: inner.fence,
            clock_micros: created_at,
            levels: vec![vec![files]],
        };
        let mut manifest = Manifest::open(dir.join("checkpoint.manifest"))?;
        if let Some(fp) = &self.failpoint {
            manifest.set_failpoint(fp.clone());
        }
        manifest.commit(state)?;
        let marker =
            CheckpointMarker { fence: inner.fence, shards: inner.shards.len() as u32 };
        write_marker(dir, marker, &self.manifest_fsyncs, self.failpoint.as_ref())?;
        Ok(marker)
    }

    /// Flushes every shard's write buffer and waits until every shard's
    /// worker has drained its compaction queue (including TTL-driven
    /// compactions that are due).
    ///
    /// The buffers are frozen under each shard lock in turn (microseconds),
    /// then all workers flush and compact **concurrently**; this call only
    /// blocks for the slowest shard, not for the sum of all shards.
    pub fn persist(&self) -> Result<()> {
        loop {
            let mut pending = false;
            for shard in &self.shards {
                let mut engine = shard.engine.lock();
                // freeze() returns false both for an empty active buffer
                // and for an occupied frozen slot — in the latter case the
                // active buffer may still hold data, so another pass is
                // needed after the workers drain the slot
                if engine.tree_mut().freeze()? || engine.tree().has_frozen() {
                    pending = true;
                }
                drop(engine);
                shard.worker.wake();
            }
            for shard in &self.shards {
                shard.worker.drain()?;
            }
            if !pending {
                return Ok(());
            }
        }
    }

    /// Wakes every shard's worker and waits for all of them to quiesce,
    /// letting FADE react to the passage of logical time; the
    /// delete-persistence threshold `D_th` holds per shard against the
    /// shared clock. The workers run concurrently — no shard blocks
    /// foreground operations on another shard while this drains.
    pub fn maintain(&self) -> Result<()> {
        for shard in &self.shards {
            shard.worker.wake();
        }
        for shard in &self.shards {
            shard.worker.drain()?;
        }
        Ok(())
    }

    /// Write-backpressure event counters accumulated by this store.
    pub fn backpressure(&self) -> BackpressureStats {
        BackpressureStats {
            stalls: self.stalls.load(Ordering::Relaxed),
            slowdowns: self.slowdowns.load(Ordering::Relaxed),
        }
    }

    /// Aggregated lifetime operation counters across all shards.
    ///
    /// The counters are sums of per-shard **physical** operations: one
    /// logical fan-out call (`delete_range`, `delete_where_delete_key_in`)
    /// executes on every shard and therefore counts `N` times here
    /// (`range_deletes_issued`, `secondary_range_deletes`). Divide by
    /// [`shard_count`](Self::shard_count) — or compare equal shard counts —
    /// when reading those counters as logical operation totals.
    pub fn stats(&self) -> TreeStats {
        let mut total = TreeStats::default();
        for shard in &self.shards {
            total.absorb(&shard.engine.lock().stats());
        }
        total
    }

    /// Aggregated device I/O counters across all shards, including the
    /// block-cache hit/miss counts when a cache is configured and the
    /// durability barriers issued by the per-shard WALs and the store-wide
    /// batch-commit log.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let mut snap: IoSnapshot =
            self.shards.iter().map(|shard| shard.engine.lock().io_snapshot()).sum();
        if let Some(log) = &self.batch_log {
            snap.fsyncs += log.fsync_count();
        }
        snap.fsyncs += self.manifest_fsyncs.load(Ordering::Relaxed);
        snap
    }

    /// The block cache shared by every shard, if one is configured.
    pub fn block_cache(&self) -> Option<&Arc<PageCache>> {
        self.cache.as_ref()
    }

    /// Counters and occupancy of the shared block cache, if one is
    /// configured (hit/miss/eviction/invalidation counts plus resident
    /// bytes and pages).
    pub fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.cache.as_ref().map(|c| c.snapshot())
    }

    /// Aggregated measurement-time snapshot of all shard trees.
    pub fn snapshot_contents(&self) -> Result<ContentSnapshot> {
        let mut total = ContentSnapshot::default();
        for shard in &self.shards {
            total.absorb(&shard.engine.lock().snapshot_contents()?);
        }
        Ok(total)
    }

    /// Write amplification across all shards (aggregate device bytes written
    /// over aggregate bytes ingested).
    pub fn write_amplification(&self) -> f64 {
        self.stats().write_amplification(self.io_snapshot().bytes_written)
    }

    /// The logical clock shared by every shard; advance it to model the
    /// passage of time between operations.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// White-box access to one shard for experiments and tests: pauses the
    /// shard's background worker (its in-flight job completes first), then
    /// runs `f` with the shard's engine locked.
    ///
    /// # Panics
    /// Panics if `index >= self.shard_count()`.
    pub fn with_shard<R>(&self, index: usize, f: impl FnOnce(&mut Lethe) -> R) -> R {
        let shard = &self.shards[index];
        let _parked = shard.worker.pause();
        // bind the guard: a tail-expression temporary would outlive
        // `_parked`, making the pause guard re-lock the worker state while
        // the engine lock is still held — a rank inversion
        let mut engine = shard.engine.lock();
        f(&mut engine)
    }
}

/// One shard's stream inside a [`ShardedRangeIter`]: the shard's pinned
/// streaming cursor plus its buffered head item.
struct ShardHead {
    iter: RangeIter,
    next: Option<(SortKey, Bytes)>,
}

impl ShardHead {
    /// Advances the underlying stream into the head slot; an error parks in
    /// `pending_err` (first error wins) and leaves the head empty.
    fn pull(&mut self, pending_err: &mut Option<lethe_storage::StorageError>) {
        match self.iter.next() {
            Some(Ok(kv)) => self.next = Some(kv),
            Some(Err(e)) => {
                self.next = None;
                pending_err.get_or_insert(e);
            }
            None => self.next = None,
        }
    }
}

/// A streaming cross-shard range scan; obtained from
/// [`ShardedLethe::iter_range`].
///
/// Yields `Result<(key, value)>` in global sort-key order (hash partitioning
/// puts every key in exactly one shard, so there are no cross-shard ties).
/// Each shard contributes through its own pinned snapshot cursor; pages are
/// decoded lazily as the merge advances. If any shard's stream fails, the
/// error is yielded once (after the items already merged) and the iterator
/// is fused.
pub struct ShardedRangeIter {
    heads: Vec<ShardHead>,
    pending_err: Option<lethe_storage::StorageError>,
    done: bool,
}

impl Iterator for ShardedRangeIter {
    type Item = Result<(SortKey, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_err.take() {
            self.done = true;
            return Some(Err(e));
        }
        let mut best: Option<(usize, SortKey)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some((k, _)) = &head.next {
                if best.is_none_or(|(_, bk)| *k < bk) {
                    best = Some((i, *k));
                }
            }
        }
        let Some((i, _)) = best else {
            self.done = true;
            return None;
        };
        let item = self.heads[i].next.take().expect("best head has an item");
        self.heads[i].pull(&mut self.pending_err);
        Some(Ok(item))
    }
}

/// The pinned state behind one [`Snapshot`] handle: the per-shard captured
/// views plus the tracker registration covering them. Lives in the store's
/// snapshot registry (the only strong `Arc`); dropping it — via handle drop
/// or [`ShardedLethe::expire_snapshots`] — releases the tracker fence, the
/// pinned buffers and the pinned versions, letting tombstone GC and page
/// reclamation resume.
struct SnapshotInner {
    fence: SeqNum,
    shards: Vec<TreeSnapshot>,
    tracker: Arc<SnapshotTracker>,
}

impl Drop for SnapshotInner {
    fn drop(&mut self) {
        self.tracker.release(self.fence);
    }
}

/// A consistent cross-shard point-in-time view of a [`ShardedLethe`] store,
/// obtained from [`ShardedLethe::snapshot`].
///
/// All reads (`get`/`range`/`iter_range`/`scan_by_delete_key`) answer as of
/// the snapshot's seqnum fence, no matter how many writes, flushes,
/// compactions or secondary deletes have happened since — and they take no
/// shard locks. While the handle lives, tombstone GC that would discard
/// history it reads is deferred and its disk pages are pinned; dropping it
/// releases both. A handle invalidated by
/// [`ShardedLethe::expire_snapshots`] fails every subsequent read with an
/// explicit error (its pages may have been reclaimed — the tracker's
/// lowest-freed watermark has moved past its fence) instead of returning
/// partial state; iterators obtained *before* the expiry stay safe, since
/// they hold their own pins.
pub struct Snapshot {
    id: u64,
    fence: SeqNum,
    inner: Weak<SnapshotInner>,
    registry: Arc<Mutex<HashMap<u64, Arc<SnapshotInner>>>>,
    tracker: Arc<SnapshotTracker>,
}

impl Snapshot {
    /// The snapshot's seqnum fence: every write with a smaller seqnum is
    /// visible, every one at or above it is not.
    pub fn seqnum(&self) -> SeqNum {
        self.fence
    }

    /// The pinned state, or the fail-closed error for an expired handle.
    fn pinned(&self) -> Result<Arc<SnapshotInner>> {
        self.inner.upgrade().ok_or_else(|| {
            let reclaimed = !self.tracker.is_valid(self.fence);
            StorageError::InvalidOperation(format!(
                "snapshot at seqnum fence {} was expired{}; take a new snapshot",
                self.fence,
                if reclaimed {
                    " and pages it pinned may already be reclaimed \
                     (the lowest-freed watermark passed its fence)"
                } else {
                    ""
                }
            ))
        })
    }

    /// Point lookup at the snapshot: the value of `key` as of the fence.
    pub fn get(&self, key: SortKey) -> Result<Option<Bytes>> {
        let inner = self.pinned()?;
        inner.shards[shard_of_key(key, inner.shards.len())].get(key)
    }

    /// Range lookup over `[lo, hi)` at the snapshot, merged back into
    /// global sort-key order across shards.
    pub fn range(&self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        let inner = self.pinned()?;
        let mut per_shard = Vec::with_capacity(inner.shards.len());
        for shard in &inner.shards {
            per_shard.push(shard.range(lo, hi)?);
        }
        Ok(merge_sorted_by_key(per_shard, |kv: &(SortKey, Bytes)| kv.0))
    }

    /// Streaming range scan over `[lo, hi)` at the snapshot: the frozen
    /// twin of [`ShardedLethe::iter_range`], k-way merging per-shard
    /// cursors over the captured state. The returned iterator owns its own
    /// pins, so it remains valid even if the handle is expired mid-scan.
    pub fn iter_range(&self, lo: SortKey, hi: SortKey) -> Result<ShardedRangeIter> {
        let inner = self.pinned()?;
        let mut heads = Vec::with_capacity(inner.shards.len());
        let mut pending_err = None;
        for shard in &inner.shards {
            match shard.iter_range(lo, hi) {
                Ok(iter) => {
                    let mut head = ShardHead { iter, next: None };
                    head.pull(&mut pending_err);
                    heads.push(head);
                }
                Err(e) => {
                    pending_err.get_or_insert(e);
                }
            }
        }
        Ok(ShardedRangeIter { heads, pending_err, done: false })
    }

    /// Secondary range lookup at the snapshot: every entry live at the
    /// fence whose delete key lies in `[lo, hi)`, across all shards, in
    /// sort-key order.
    pub fn scan_by_delete_key(&self, lo: DeleteKey, hi: DeleteKey) -> Result<Vec<Entry>> {
        let inner = self.pinned()?;
        let mut per_shard = Vec::with_capacity(inner.shards.len());
        for shard in &inner.shards {
            per_shard.push(shard.scan_by_delete_key(lo, hi)?);
        }
        Ok(merge_sorted_by_key(per_shard, |e: &Entry| e.sort_key))
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // remove the registry's Arc (usually the last one): the inner drop
        // runs after the registry lock is released
        let inner = self.registry.lock().remove(&self.id);
        drop(inner);
    }
}

/// K-way merges per-source vectors that are each already sorted by `key`
/// into one globally sorted vector. Ties across sources are broken by source
/// index, which makes fan-out results deterministic.
fn merge_sorted_by_key<T, K: Ord + Copy>(sources: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    let total: usize = sources.iter().map(Vec::len).sum();
    let mut heads: Vec<std::iter::Peekable<std::vec::IntoIter<T>>> =
        sources.into_iter().map(|v| v.into_iter().peekable()).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, K)> = None;
        for (i, head) in heads.iter_mut().enumerate() {
            if let Some(item) = head.peek() {
                let k = key(item);
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, _)) => out.push(heads[i].next().unwrap()),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShardedLetheBuilder {
        ShardedLetheBuilder::new()
            .buffer(8, 4, 64)
            .size_ratio(4)
            .delete_tile_pages(2)
            .delete_persistence_threshold_secs(5.0)
    }

    #[test]
    fn routes_points_and_merges_ranges() {
        let db = small().shards(4).build().unwrap();
        assert_eq!(db.shard_count(), 4);
        for k in 0..500u64 {
            db.put(k, k % 97, format!("v{k}")).unwrap();
        }
        db.persist().unwrap();
        assert_eq!(db.get(123).unwrap(), Some(Bytes::from("v123")));
        assert_eq!(db.get(9999).unwrap(), None);
        let all = db.range(0, 500).unwrap();
        assert_eq!(all.len(), 500);
        let keys: Vec<u64> = all.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "fan-out range must return global sort-key order");
    }

    #[test]
    fn deletes_fan_out_correctly() {
        let db = small().shards(3).build().unwrap();
        for k in 0..300u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        assert!(db.delete(7).unwrap());
        assert_eq!(db.get(7).unwrap(), None);
        db.delete_range(100, 150).unwrap();
        assert_eq!(db.range(100, 150).unwrap().len(), 0);
        assert_eq!(db.get(150).unwrap(), Some(Bytes::from("v150")));
        // secondary delete covers every shard: drop delete keys [200, 300)
        // (KiWi page drops act on flushed pages, so persist first)
        db.persist().unwrap();
        let stats = db.delete_where_delete_key_in(200, 300).unwrap();
        assert_eq!(stats.entries_deleted, 100);
        assert!(db.scan_by_delete_key(200, 300).unwrap().is_empty());
        assert!(db.get(199).unwrap().is_some());
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let db = small().shards(4).build().unwrap();
        for k in 0..200u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        for k in 0..200u64 {
            db.get(k).unwrap();
        }
        db.persist().unwrap();
        let stats = db.stats();
        assert_eq!(stats.entries_ingested, 200);
        assert_eq!(stats.point_lookups, 200);
        let io = db.io_snapshot();
        assert!(io.pages_written > 0);
        // every shard took a slice of the key space
        for i in 0..db.shard_count() {
            assert!(db.with_shard(i, |s| s.stats().entries_ingested) > 0);
        }
    }

    #[test]
    fn single_shard_matches_unsharded_semantics() {
        let db = small().shards(1).build().unwrap();
        for k in 0..100u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        db.persist().unwrap();
        assert_eq!(db.range(0, 100).unwrap().len(), 100);
        assert!(db.delete(5).unwrap());
        assert!(!db.delete(100_000).unwrap(), "blind delete must be suppressed");
        assert_eq!(db.stats().blind_deletes_suppressed, 1);
    }

    #[test]
    fn durable_sharded_store_roundtrips_and_checks_shard_count() {
        let dir = std::env::temp_dir().join(format!("lethe-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = || small().buffer(64, 4, 64).shards(3);
        {
            let db = durable().open(&dir).unwrap();
            for k in 0..200u64 {
                db.put(k, k, format!("durable-{k}")).unwrap();
            }
            // no flush: data only lives in the per-shard WALs
        }
        {
            let db = durable().open(&dir).unwrap();
            assert_eq!(db.get(42).unwrap(), Some(Bytes::from("durable-42")));
            assert_eq!(db.range(0, 200).unwrap().len(), 200);
        }
        // a mismatched shard count must be rejected, not silently misroute
        assert!(small().shards(5).open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_sharded_store_recovers_flushed_data() {
        let dir = std::env::temp_dir().join(format!("lethe-sharded-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // tiny buffers: the working set is far larger than the write
        // buffers, so reopening must recover per-shard manifests, not just
        // replay the WALs
        let durable = || small().shards(3);
        {
            let db = durable().open(&dir).unwrap();
            for k in 0..500u64 {
                db.put(k, k % 97, format!("flushed-{k}")).unwrap();
            }
            db.persist().unwrap();
            for k in (0..500u64).step_by(7) {
                db.delete(k).unwrap();
            }
            db.persist().unwrap();
        }
        {
            let db = durable().open(&dir).unwrap();
            for k in 0..500u64 {
                let expect = if k % 7 == 0 { None } else { Some(Bytes::from(format!("flushed-{k}"))) };
                assert_eq!(db.get(k).unwrap(), expect, "key {k}");
            }
            assert_eq!(db.range(0, 500).unwrap().len(), 500 - 500usize.div_ceil(7));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_store_without_super_manifest_is_rejected() {
        let dir = std::env::temp_dir().join(format!("lethe-sharded-part-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = small().shards(2).open(&dir).unwrap();
            for k in 0..200u64 {
                db.put(k, k, format!("v{k}")).unwrap();
            }
            db.persist().unwrap();
        }
        // lose the routing record: shard manifests exist, SHARDS does not
        std::fs::remove_file(dir.join("SHARDS")).unwrap();
        let err = match small().shards(2).open(&dir) {
            Ok(_) => panic!("partial shard state must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("SHARDS"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuning_is_independent_of_builder_call_order() {
        let profile = crate::tuning::WorkloadProfile {
            empty_point_lookups: 100.0,
            point_lookups: 100.0,
            short_range_lookups: 1.0,
            long_range_lookups: 0.0,
            long_range_selectivity: 0.0,
            secondary_range_deletes: 1.0,
            inserts: 0.0,
        };
        let tuned_then_sharded = ShardedLetheBuilder::new()
            .buffer(8, 4, 64)
            .size_ratio(4)
            .tune_delete_tiles_for(&profile, 1 << 16)
            .shards(16)
            .build()
            .unwrap();
        let sharded_then_tuned = ShardedLetheBuilder::new()
            .buffer(8, 4, 64)
            .size_ratio(4)
            .shards(16)
            .tune_delete_tiles_for(&profile, 1 << 16)
            .build()
            .unwrap();
        let h_a = tuned_then_sharded.with_shard(0, |s| s.config().pages_per_delete_tile);
        let h_b = sharded_then_tuned.with_shard(0, |s| s.config().pages_per_delete_tile);
        assert_eq!(h_a, h_b, "Equation (3) tuning must use the final shard count");
    }

    #[test]
    fn failed_open_leaves_no_shard_manifest() {
        let dir = std::env::temp_dir().join(format!("lethe-shardfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // make shard-000's WAL path unopenable: a directory where the file goes
        std::fs::create_dir_all(dir.join("shard-000.wal")).unwrap();
        assert!(small().shards(2).open(&dir).is_err());
        assert!(
            !dir.join("SHARDS").exists(),
            "a failed open must not pin a shard count for a store that was never created"
        );
        // after clearing the obstruction, any shard count opens fine
        std::fs::remove_dir_all(dir.join("shard-000.wal")).unwrap();
        let db = small().shards(5).open(&dir).unwrap();
        drop(db);
        assert!(dir.join("SHARDS").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_flushes_active_buffer_behind_occupied_frozen_slot() {
        // regression: freeze() returning false because the frozen slot was
        // occupied used to end persist()'s loop one pass early, leaving the
        // active buffer (and with relaxed WAL sync policies, unsynced
        // acknowledged writes) unflushed
        let db = small().shards(1).build().unwrap();
        db.with_shard(0, |engine| {
            // occupy the frozen slot and refill the active buffer while the
            // worker is paused (with_shard) and never woken (direct puts
            // bypass the front-end's wake)
            for k in 0..40u64 {
                engine.put(k, k, format!("frozen-{k}")).unwrap();
            }
            engine.tree_mut().freeze().unwrap();
            assert!(engine.tree().has_frozen());
            for k in 40..80u64 {
                engine.put(k, k, format!("active-{k}")).unwrap();
            }
            assert!(engine.tree().buffered_entries() > 0);
        });
        db.persist().unwrap();
        assert_eq!(
            db.with_shard(0, |engine| engine.tree().buffered_entries()),
            0,
            "persist must flush the active buffer even when the frozen slot was occupied"
        );
        assert!(!db.with_shard(0, |engine| engine.tree().has_frozen()));
        for k in 0..80u64 {
            assert!(db.get(k).unwrap().is_some(), "key {k} lost");
        }
    }

    #[test]
    fn two_stores_share_one_block_cache_without_crosstalk() {
        let cache = PageCache::new_shared(1 << 20);
        let a = small().shards(2).shared_block_cache(Arc::clone(&cache)).build().unwrap();
        let b = small().shards(2).shared_block_cache(Arc::clone(&cache)).build().unwrap();
        for k in 0..200u64 {
            a.put(k, k, format!("a{k}")).unwrap();
            b.put(k, k, format!("b{k}")).unwrap();
        }
        a.persist().unwrap();
        b.persist().unwrap();
        // per-source keying: the same page ids exist in both stores, yet
        // every read resolves to its own store's value
        for k in 0..200u64 {
            assert_eq!(a.get(k).unwrap(), Some(Bytes::from(format!("a{k}"))));
            assert_eq!(b.get(k).unwrap(), Some(Bytes::from(format!("b{k}"))));
        }
        for k in 0..200u64 {
            a.get(k).unwrap();
            b.get(k).unwrap();
        }
        let snap = cache.snapshot();
        assert!(snap.hits > 0, "the second pass must hit the shared cache: {snap:?}");
        // both stores report the one shared cache
        assert_eq!(a.cache_snapshot().unwrap(), b.cache_snapshot().unwrap());
    }

    #[test]
    fn write_batch_routes_and_applies_all_ops() {
        let db = small().shards(4).build().unwrap();
        db.put(7, 7, "doomed").unwrap();
        let mut batch = WriteBatch::new();
        for k in 0..64u64 {
            batch.put(k, k % 13, format!("b{k}"));
        }
        batch.delete(7);
        db.write(batch).unwrap();
        // the delete was appended after the put of key 7, so it wins
        assert_eq!(db.get(7).unwrap(), None);
        assert_eq!(db.range(0, 64).unwrap().len(), 63);
        for k in [0u64, 1, 31, 63] {
            if k != 7 {
                assert_eq!(db.get(k).unwrap(), Some(Bytes::from(format!("b{k}"))));
            }
        }
        // a batch-wide secondary delete fans out to every shard
        let mut purge = WriteBatch::new();
        purge.secondary_range_delete(0, 4);
        db.persist().unwrap();
        db.write(purge).unwrap();
        assert!(db.scan_by_delete_key(0, 4).unwrap().is_empty());
        // an empty batch is a no-op
        db.write(WriteBatch::new()).unwrap();
    }

    #[test]
    fn snapshot_is_a_frozen_cross_shard_view() {
        let db = small().shards(3).build().unwrap();
        for k in 0..300u64 {
            db.put(k, k % 31, format!("v{k}")).unwrap();
        }
        db.persist().unwrap();
        let snap = db.snapshot();
        assert_eq!(db.live_snapshots(), 1);
        // mutate heavily after the fence: overwrites, deletes, a range
        // delete, a secondary delete, flushes and compactions
        for k in 0..300u64 {
            db.put(k, k % 31, format!("new{k}")).unwrap();
        }
        db.delete_range(50, 100).unwrap();
        db.delete(7).unwrap();
        db.persist().unwrap();
        db.delete_where_delete_key_in(0, 5).unwrap();
        db.maintain().unwrap();
        // the snapshot still answers as of the fence
        assert_eq!(snap.get(7).unwrap(), Some(Bytes::from("v7")));
        assert_eq!(snap.get(60).unwrap(), Some(Bytes::from("v60")));
        let frozen = snap.range(0, 300).unwrap();
        assert_eq!(frozen.len(), 300);
        for (k, v) in &frozen {
            assert_eq!(v, &Bytes::from(format!("v{k}")));
        }
        // streaming scan agrees with the materialised range
        let streamed: Vec<_> =
            snap.iter_range(0, 300).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, frozen);
        // secondary scan at the fence still sees delete keys [0, 5)
        assert!(!snap.scan_by_delete_key(0, 5).unwrap().is_empty());
        // the live view moved on
        assert_eq!(db.get(7).unwrap(), None);
        assert_eq!(db.get(60).unwrap(), None);
        // key 6's delete key (6) is outside the purged [0, 5) range
        assert_eq!(db.get(6).unwrap(), Some(Bytes::from("new6")));
        drop(snap);
        assert_eq!(db.live_snapshots(), 0);
    }

    #[test]
    fn expired_snapshot_handle_fails_closed() {
        let db = small().shards(2).build().unwrap();
        for k in 0..100u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        let snap = db.snapshot();
        assert_eq!(snap.get(1).unwrap(), Some(Bytes::from("v1")));
        // an iterator created before the expiry owns its own pins
        let mut early_iter = snap.iter_range(0, 100).unwrap();
        assert_eq!(db.expire_snapshots(), 1);
        assert_eq!(db.live_snapshots(), 0);
        let err = snap.get(1).unwrap_err();
        assert!(err.to_string().contains("expired"), "got: {err}");
        assert!(snap.range(0, 100).is_err());
        assert!(snap.iter_range(0, 100).is_err());
        assert!(snap.scan_by_delete_key(0, 100).is_err());
        let drained: Vec<_> = early_iter.by_ref().collect::<Result<_>>().unwrap();
        assert_eq!(drained.len(), 100);
        // a fresh snapshot after the expiry works
        let fresh = db.snapshot();
        assert_eq!(fresh.get(1).unwrap(), Some(Bytes::from("v1")));
    }

    #[test]
    fn checkpoint_restores_the_fenced_view() {
        let dir = std::env::temp_dir().join(format!("lethe-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = small().shards(3).build().unwrap();
        for k in 0..400u64 {
            db.put(k, k % 53, format!("v{k}")).unwrap();
        }
        db.delete(13).unwrap();
        db.delete_range(350, 400).unwrap();
        db.persist().unwrap();
        let snap = db.snapshot();
        let expected = snap.range(0, 400).unwrap();
        let marker = db.checkpoint_at(&snap, &dir).unwrap();
        assert_eq!(marker.fence, snap.seqnum());
        assert_eq!(marker.shards, 3);
        // writers continue after (and conceptually during) the stream;
        // none of this reaches the checkpoint
        for k in 0..400u64 {
            db.put(k, k % 53, "after").unwrap();
        }
        let restored = Lethe::restore(&dir).unwrap();
        assert_eq!(restored.range(0, 400).unwrap(), expected);
        assert_eq!(restored.get(13).unwrap(), None);
        assert_eq!(restored.get(360).unwrap(), None);
        assert_eq!(restored.get(12).unwrap(), Some(Bytes::from("v12")));
        // secondary index metadata survived the stream
        let by_delete = restored.scan_by_delete_key(5, 6).unwrap();
        assert!(!by_delete.is_empty());
        assert!(by_delete.iter().all(|e| e.delete_key == 5));
        // the restored store resumes past the fence and accepts writes
        let mut restored = restored;
        restored.put(9999, 1, "fresh").unwrap();
        assert_eq!(restored.get(9999).unwrap(), Some(Bytes::from("fresh")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_refuses_a_markerless_directory() {
        let dir = std::env::temp_dir().join(format!("lethe-ckpt-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = small().shards(2).build().unwrap();
        for k in 0..100u64 {
            db.put(k, k, format!("v{k}")).unwrap();
        }
        db.checkpoint(&dir).unwrap();
        // simulate a checkpoint torn before its commit point
        std::fs::remove_file(dir.join("CHECKPOINT")).unwrap();
        let err = match Lethe::restore(&dir) {
            Ok(_) => panic!("a markerless checkpoint must be refused"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("incomplete"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_shard_batches_survive_reopen_unflushed() {
        let dir = std::env::temp_dir().join(format!("lethe-xshard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = || small().buffer(64, 4, 64).shards(3);
        {
            let db = durable().open(&dir).unwrap();
            let mut batch = WriteBatch::new();
            for k in 0..60u64 {
                batch.put(k, k, format!("x{k}"));
            }
            db.write(batch).unwrap();
            // no persist: the batch lives only in the shard WALs + BATCHES
        }
        assert!(dir.join("BATCHES").exists());
        {
            let db = durable().open(&dir).unwrap();
            assert_eq!(db.range(0, 60).unwrap().len(), 60, "committed batch must replay in full");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_log_compacts_once_wals_forget_the_batch() {
        let dir = std::env::temp_dir().join(format!("lethe-blogret-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = || small().shards(3);
        {
            let db = durable().open(&dir).unwrap();
            let mut batch = WriteBatch::new();
            for k in 0..48u64 {
                batch.put(k, k, format!("y{k}"));
            }
            db.write(batch).unwrap();
            // flushing moves the slices into sstables and truncates the WALs
            db.persist().unwrap();
        }
        {
            // this reopen sees no WAL references and compacts the log
            let db = durable().open(&dir).unwrap();
            assert_eq!(db.range(0, 48).unwrap().len(), 48);
        }
        let n = lethe_storage::BatchCommitLog::assert_loadable(dir.join("BATCHES")).unwrap();
        assert_eq!(n, 0, "flushed-out batch ids must be compacted away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_concurrent_puts_coalesce_fsyncs() {
        let dir = std::env::temp_dir().join(format!("lethe-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = small()
            .buffer(256, 4, 64)
            .shards(1)
            .wal_sync_policy(lethe_storage::SyncPolicy::Always)
            .open(&dir)
            .unwrap();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 40;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = &db;
                s.spawn(move || {
                    for k in (t * PER_THREAD)..((t + 1) * PER_THREAD) {
                        db.put(k, k, format!("g{k}")).unwrap();
                    }
                });
            }
        });
        for k in 0..THREADS * PER_THREAD {
            assert_eq!(db.get(k).unwrap(), Some(Bytes::from(format!("g{k}"))), "key {k}");
        }
        let io = db.io_snapshot();
        assert!(io.fsyncs > 0, "durable writes must issue barriers");
        // every record is durable, but racing writers share group barriers,
        // so there can never be more WAL fsyncs than records — and with 8
        // writers against one shard there are reliably fewer (the assert is
        // deliberately loose: scheduling decides the exact group sizes)
        assert!(
            io.fsyncs <= THREADS * PER_THREAD,
            "group commit must not fsync more than once per record: {io:?}"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_land_all_entries() {
        let db = small().shards(4).build().unwrap();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let db = &db;
                s.spawn(move || {
                    for k in (t * 1000)..(t * 1000 + 1000) {
                        db.put(k, k % 31, format!("v{k}")).unwrap();
                    }
                });
            }
        });
        db.persist().unwrap();
        assert_eq!(db.stats().entries_ingested, 8000);
        assert_eq!(db.range(0, 8000).unwrap().len(), 8000);
    }
}
