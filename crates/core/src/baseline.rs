//! The state-of-the-art baselines the paper compares Lethe against (§5).
//!
//! All baselines are [`LsmTree`] instances with the classic sort-key-only
//! layout (`h = 1`), full-tree compactions for secondary range deletes, and
//! one of three compaction policies:
//!
//! * [`BaselineKind::RocksDbLike`] — saturation trigger + min-overlap file
//!   selection ("RocksDB" in the figures).
//! * [`BaselineKind::TombstoneSelection`] — RocksDB's tombstone-count-based
//!   file picking (§3.1.3): it reduces stale entries but gives no persistence
//!   guarantee.
//! * [`BaselineKind::PeriodicFullCompaction`] — the industry workaround: a
//!   forced full-tree compaction every `period` of logical time ("state of
//!   the art + full compaction" in Figure 1).

use bytes::Bytes;
use lethe_lsm::compaction::{
    CompactionPolicy, FileSelection, PeriodicFullCompactionPolicy, SaturationPolicy,
};
use lethe_lsm::config::{LsmConfig, SecondaryDeleteMode};
use lethe_lsm::tree::LsmTree;
use lethe_storage::{
    DeleteKey, InMemoryBackend, LogicalClock, Result, SortKey, StorageBackend, Timestamp,
};
use std::sync::Arc;

/// Which baseline engine to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Saturation-driven compactions with min-overlap file selection.
    RocksDbLike,
    /// Saturation-driven compactions picking the file with the most
    /// tombstones.
    TombstoneSelection,
    /// `RocksDbLike` plus a forced full-tree compaction every `period`
    /// microseconds of logical time.
    PeriodicFullCompaction {
        /// Full-compaction period in logical microseconds.
        period: Timestamp,
    },
}

impl BaselineKind {
    fn policy(&self) -> Box<dyn CompactionPolicy> {
        match self {
            BaselineKind::RocksDbLike => {
                Box::new(SaturationPolicy::new(FileSelection::MinOverlap))
            }
            BaselineKind::TombstoneSelection => {
                Box::new(SaturationPolicy::new(FileSelection::MostTombstones))
            }
            BaselineKind::PeriodicFullCompaction { period } => {
                Box::new(PeriodicFullCompactionPolicy::new(FileSelection::MinOverlap, *period))
            }
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::RocksDbLike => "rocksdb-like",
            BaselineKind::TombstoneSelection => "rocksdb-tombstone-selection",
            BaselineKind::PeriodicFullCompaction { .. } => "rocksdb+periodic-full",
        }
    }
}

/// A state-of-the-art baseline engine wrapping [`LsmTree`] with the same
/// surface as [`crate::engine::Lethe`], so experiments can drive both
/// uniformly.
pub struct Baseline {
    kind: BaselineKind,
    tree: LsmTree,
}

impl Baseline {
    /// Builds a baseline on the in-memory simulated device.
    pub fn new(kind: BaselineKind, mut config: LsmConfig) -> Result<Self> {
        // baselines use the classic layout and full-tree secondary deletes
        config.pages_per_delete_tile = 1;
        config.secondary_delete_mode = SecondaryDeleteMode::FullTreeCompaction;
        config.suppress_blind_deletes = false;
        config.delete_persistence_threshold = None;
        Self::on_backend(kind, config, InMemoryBackend::new_shared(), LogicalClock::new())
    }

    /// Builds a baseline on an explicit device and clock.
    pub fn on_backend(
        kind: BaselineKind,
        config: LsmConfig,
        backend: Arc<dyn StorageBackend>,
        clock: LogicalClock,
    ) -> Result<Self> {
        let tree = LsmTree::new(config, backend, clock, kind.policy())?;
        Ok(Baseline { kind, tree })
    }

    /// Which baseline this is.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Inserts or updates a key.
    pub fn put(&mut self, key: SortKey, delete_key: DeleteKey, value: impl Into<Bytes>) -> Result<()> {
        self.tree.put(key, delete_key, value.into())
    }

    /// Point lookup.
    pub fn get(&mut self, key: SortKey) -> Result<Option<Bytes>> {
        self.tree.get(key)
    }

    /// Point delete (always inserts a tombstone; baselines do not suppress
    /// blind deletes).
    pub fn delete(&mut self, key: SortKey) -> Result<bool> {
        self.tree.delete(key)
    }

    /// Range delete on the sort key.
    pub fn delete_range(&mut self, start: SortKey, end: SortKey) -> Result<()> {
        self.tree.delete_range(start, end)
    }

    /// Secondary range delete via a full-tree compaction (the
    /// state-of-the-art behaviour, §3.3).
    pub fn delete_where_delete_key_in(
        &mut self,
        lo: DeleteKey,
        hi: DeleteKey,
    ) -> Result<lethe_lsm::sstable::SecondaryDeleteStats> {
        self.tree.secondary_range_delete(lo, hi)
    }

    /// Range lookup on the sort key.
    pub fn range(&mut self, lo: SortKey, hi: SortKey) -> Result<Vec<(SortKey, Bytes)>> {
        self.tree.range(lo, hi)
    }

    /// Flush + compaction loop.
    pub fn persist(&mut self) -> Result<()> {
        self.tree.flush()?;
        self.tree.maintain()
    }

    /// The underlying tree (counters, snapshots, white-box access).
    pub fn tree(&self) -> &LsmTree {
        &self.tree
    }

    /// Mutable access to the underlying tree.
    pub fn tree_mut(&mut self) -> &mut LsmTree {
        &mut self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LsmConfig {
        LsmConfig::small_for_test()
    }

    #[test]
    fn baseline_config_is_classic() {
        let b = Baseline::new(BaselineKind::RocksDbLike, {
            let mut c = small();
            c.pages_per_delete_tile = 8; // must be overridden back to 1
            c.suppress_blind_deletes = true;
            c
        })
        .unwrap();
        assert_eq!(b.tree().config().pages_per_delete_tile, 1);
        assert_eq!(
            b.tree().config().secondary_delete_mode,
            SecondaryDeleteMode::FullTreeCompaction
        );
        assert!(!b.tree().config().suppress_blind_deletes);
        assert_eq!(b.kind(), BaselineKind::RocksDbLike);
        assert_eq!(b.kind().label(), "rocksdb-like");
    }

    #[test]
    fn all_baselines_answer_queries_identically() {
        let kinds = [
            BaselineKind::RocksDbLike,
            BaselineKind::TombstoneSelection,
            BaselineKind::PeriodicFullCompaction { period: 500_000 },
        ];
        for kind in kinds {
            let mut b = Baseline::new(kind, small()).unwrap();
            for k in 0..800u64 {
                b.put(k, k % 100, format!("v{k}")).unwrap();
            }
            for k in (0..800u64).step_by(4) {
                b.delete(k).unwrap();
            }
            b.delete_range(500, 600).unwrap();
            b.persist().unwrap();
            assert_eq!(b.get(0).unwrap(), None, "{kind:?}");
            assert_eq!(b.get(1).unwrap(), Some(Bytes::from("v1")), "{kind:?}");
            assert_eq!(b.get(550).unwrap(), None, "{kind:?}");
            let live = b.range(0, 800).unwrap();
            // 800 keys − 200 point-deleted − (100 range-deleted − 25 overlap)
            assert_eq!(live.len(), 525, "{kind:?}");
        }
    }

    #[test]
    fn periodic_full_compaction_persists_deletes() {
        let mut b = Baseline::new(
            BaselineKind::PeriodicFullCompaction { period: 100_000 },
            small(),
        )
        .unwrap();
        for k in 0..500u64 {
            b.put(k, k, format!("v{k}")).unwrap();
        }
        for k in 0..100u64 {
            b.delete(k).unwrap();
        }
        // ingest enough to move logical time past several periods
        for k in 1000..3000u64 {
            b.put(k, k, format!("v{k}")).unwrap();
        }
        b.persist().unwrap();
        assert!(b.tree().stats().full_tree_compactions > 0);
        let snap = b.tree().snapshot_contents().unwrap();
        assert_eq!(snap.tombstones, 0, "full compactions must purge tombstones");
    }

    #[test]
    fn secondary_delete_runs_full_tree_compaction() {
        let mut b = Baseline::new(BaselineKind::RocksDbLike, small()).unwrap();
        for k in 0..600u64 {
            b.put(k, (k * 13) % 1000, format!("v{k}")).unwrap();
        }
        b.persist().unwrap();
        let before = b.tree().stats().full_tree_compactions;
        let stats = b.delete_where_delete_key_in(0, 500).unwrap();
        assert_eq!(b.tree().stats().full_tree_compactions, before + 1);
        assert!(stats.entries_deleted > 100);
        for k in 0..600u64 {
            let gone = (k * 13) % 1000 < 500;
            assert_eq!(b.get(k).unwrap().is_none(), gone, "key {k}");
        }
    }
}
