//! # lethe-core
//!
//! The primary contribution of *Lethe: A Tunable Delete-Aware LSM Engine*
//! (SIGMOD 2020), built on top of the `lethe-lsm` substrate:
//!
//! * [`fade`] — the FADE family of delete-aware compaction strategies:
//!   per-level TTLs derived from the delete persistence threshold `D_th`,
//!   delete-driven triggers, and the SO/SD/DD file-selection modes.
//! * [`kiwi`] — planning and accounting helpers for the Key Weaving Storage
//!   Layout (full/partial page-drop prediction, metadata overhead, CPU-cost
//!   multipliers).
//! * [`engine`] — [`Lethe`], the engine that combines FADE and KiWi behind a
//!   single API with the two tuning knobs `D_th` and `h`.
//! * [`compactor`] — the per-shard background maintenance worker that
//!   drains flushes and FADE compactions off the foreground write path.
//! * [`baseline`] — the state-of-the-art engines the paper compares against.
//! * [`tuning`] — the navigable-design equations (1)–(3) that pick the
//!   optimal delete-tile granularity for a workload.
//! * [`model`] — the closed-form cost model of Table 2.
//!
//! ## Quick start
//!
//! ```
//! use lethe_core::{Lethe, LetheBuilder};
//!
//! let mut db = LetheBuilder::new()
//!     .buffer(8, 4, 64)
//!     .size_ratio(4)
//!     .delete_persistence_threshold_secs(60.0)
//!     .delete_tile_pages(4)
//!     .build()
//!     .unwrap();
//!
//! db.put(1, 20200614, "hello").unwrap();
//! assert_eq!(db.get(1).unwrap().unwrap(), &b"hello"[..]);
//! db.delete(1).unwrap();
//! assert_eq!(db.get(1).unwrap(), None);
//!
//! // secondary range delete: purge everything with delete key < 20200101
//! db.delete_where_delete_key_in(0, 20200101).unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod compactor;
pub mod engine;
pub mod fade;
pub mod kiwi;
pub mod model;
pub mod shard;
pub mod tuning;

pub use baseline::{Baseline, BaselineKind};
pub use compactor::Compactor;
pub use engine::{Lethe, LetheBuilder};
pub use shard::{BackpressureStats, ShardedLethe, ShardedLetheBuilder, ShardedRangeIter, Snapshot};
pub use fade::{level_ttls, FadePolicy, SaturationSelection};
pub use kiwi::{
    hash_cost_multiplier, metadata_overhead_bytes, plan_secondary_delete, DropPlan,
};
pub use model::{table2, Design, MergeStyle, ModelParams, Table2Row};
pub use tuning::{
    best_delete_tile_pages_numeric, optimal_delete_tile_pages, workload_cost, TreeShape,
    WorkloadProfile,
};

// Re-export the substrate types a user of the public API touches directly.
pub use lethe_lsm::batch::WriteBatch;
pub use lethe_lsm::config::{CompactionStrategy, LsmConfig, MergePolicy, SecondaryDeleteMode};
pub use lethe_lsm::strategy::{DateTieredPolicy, SizeTieredPolicy};
pub use lethe_lsm::tree::RangeIter;
pub use lethe_lsm::sstable::SecondaryDeleteStats;
pub use lethe_lsm::stats::{ContentSnapshot, TreeStats};
pub use lethe_storage::{
    CacheSnapshot, CostModel, DeleteKey, Entry, EntryKind, IoSnapshot, LogicalClock, PageCache,
    SortKey, Timestamp,
};
