//! FADE — Fast Deletion: the delete-aware family of compaction strategies
//! (paper §4.1).
//!
//! FADE guarantees that every tombstone participates in a compaction with the
//! last level within the user-supplied *delete persistence threshold* `D_th`.
//! It does so by assigning every disk level an exponentially increasing
//! time-to-live; a file whose oldest tombstone is older than its level's
//! (cumulative) TTL *expires* and must be compacted down, regardless of
//! whether its level is full.
//!
//! Per the paper, each compaction decision has two parts:
//!
//! * **trigger** — a level is saturated, *or* a file's TTL has expired;
//! * **file selection** — `SO` (smallest overlap, write-optimised),
//!   `SD` (highest estimated invalidation count `b`, space-optimised) or
//!   `DD` (the expired file, delete-persistence-driven).
//!
//! TTL expiry always uses `DD`. For saturation-driven compactions the
//! secondary optimisation goal is configurable via [`SaturationSelection`].

use lethe_lsm::compaction::{CompactionPolicy, CompactionTask, TreeView};
use lethe_lsm::config::MergePolicy;
use lethe_lsm::sstable::SsTable;
use lethe_storage::Timestamp;
use std::sync::Arc;

/// The secondary optimisation goal used when a compaction is triggered by
/// level saturation (the TTL guarantee holds under either choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationSelection {
    /// `SO`: pick the file with the smallest overlap with the next level,
    /// minimising write amplification (the state-of-the-art default).
    SmallestOverlap,
    /// `SD`: pick the file with the highest estimated invalidation count `b`,
    /// minimising space amplification (Lethe's default).
    MostInvalidations,
}

/// Per-level TTL allocation for a given threshold, size ratio and level count
/// (paper §4.1.2).
///
/// `d_i = d_0 · T^i` with `d_0 = D_th (T − 1) / (T^n − 1)` for `n` disk
/// levels, so that `Σ d_i = D_th`. The returned vector holds the *cumulative*
/// TTLs `Σ_{j ≤ i} d_j`; a file living in level `i` expires once the age of
/// its oldest tombstone exceeds `cumulative[i]`.
pub fn level_ttls(dth: Timestamp, size_ratio: usize, disk_levels: usize) -> Vec<Timestamp> {
    let n = disk_levels.max(1);
    let t = size_ratio.max(2) as f64;
    let dth_f = dth as f64;
    let d0 = dth_f * (t - 1.0) / (t.powi(n as i32) - 1.0);
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 0..n {
        acc += d0 * t.powi(i as i32);
        cumulative.push(acc.round() as Timestamp);
    }
    // guard against floating point drift: the last level's cumulative TTL is
    // exactly D_th by construction
    if let Some(last) = cumulative.last_mut() {
        *last = dth;
    }
    cumulative
}

/// The FADE compaction policy.
#[derive(Debug, Clone)]
pub struct FadePolicy {
    dth: Timestamp,
    selection: SaturationSelection,
    level_count: usize,
    cumulative_ttls: Vec<Timestamp>,
    ttl_compactions: u64,
    saturation_compactions: u64,
}

impl FadePolicy {
    /// Creates a FADE policy enforcing the delete persistence threshold
    /// `dth` (logical microseconds), using `SD` selection for
    /// saturation-driven compactions.
    pub fn new(dth: Timestamp) -> Self {
        Self::with_selection(dth, SaturationSelection::MostInvalidations)
    }

    /// Creates a FADE policy with an explicit saturation-selection mode.
    pub fn with_selection(dth: Timestamp, selection: SaturationSelection) -> Self {
        FadePolicy {
            dth,
            selection,
            level_count: 0,
            cumulative_ttls: Vec::new(),
            ttl_compactions: 0,
            saturation_compactions: 0,
        }
    }

    /// The configured delete persistence threshold.
    pub fn delete_persistence_threshold(&self) -> Timestamp {
        self.dth
    }

    /// The cumulative per-level TTLs currently in force.
    pub fn cumulative_ttls(&self) -> &[Timestamp] {
        &self.cumulative_ttls
    }

    /// Number of compactions this policy has triggered because a TTL expired.
    pub fn ttl_compactions(&self) -> u64 {
        self.ttl_compactions
    }

    /// Number of compactions this policy has triggered because a level was
    /// saturated.
    pub fn saturation_compactions(&self) -> u64 {
        self.saturation_compactions
    }

    fn recompute_ttls(&mut self, level_count: usize) {
        if level_count == self.level_count && !self.cumulative_ttls.is_empty() {
            return;
        }
        self.level_count = level_count;
        if level_count == 0 {
            self.cumulative_ttls.clear();
        } else {
            // size ratio is filled in lazily on the first `pick` (we need the
            // view's config); keep a placeholder consistent with T = 10
            self.cumulative_ttls = level_ttls(self.dth, 10, level_count);
        }
    }

    /// True if `table`, resident in disk level `level`, has outlived its TTL
    /// at logical time `now`.
    fn is_expired(&self, table: &SsTable, level: usize, now: Timestamp) -> bool {
        if !table.has_tombstones() {
            return false;
        }
        let ttl = self
            .cumulative_ttls
            .get(level)
            .copied()
            .unwrap_or(self.dth);
        table.tombstone_age(now) > ttl
    }

    /// Collects the files to compact from `level` for a delete-driven (DD)
    /// compaction: every expired file of the level is compacted in one job
    /// (paper Figure 4), ordered oldest tombstone first.
    fn pick_dd(&self, view: &TreeView<'_>, level: usize) -> Vec<u64> {
        let now = view.now;
        let mut expired: Vec<_> = view.levels[level]
            .all_tables()
            .filter(|t| self.is_expired(t, level, now))
            .collect();
        expired.sort_by(|a, b| {
            b.tombstone_age(now)
                .cmp(&a.tombstone_age(now))
                .then_with(|| b.tombstone_count().cmp(&a.tombstone_count()))
        });
        expired.iter().map(|t| t.meta.id).collect()
    }

    /// Picks the file to compact from a saturated `level` according to the
    /// configured secondary goal.
    fn pick_saturated(&self, view: &TreeView<'_>, level: usize) -> Option<u64> {
        let tables: Vec<&Arc<SsTable>> = view.levels[level].all_tables().collect();
        if tables.is_empty() {
            return None;
        }
        let now = view.now;
        // With no tombstones anywhere in the level there is nothing for the
        // delete-driven goal to optimise: fall back to the write-optimised
        // smallest-overlap choice so that, absent deletes, Lethe behaves
        // exactly like the state of the art (paper §5.1).
        let selection = if self.selection == SaturationSelection::MostInvalidations
            && tables.iter().all(|t| view.estimated_invalidation_count(t) == 0.0)
        {
            SaturationSelection::SmallestOverlap
        } else {
            self.selection
        };
        let chosen = match selection {
            SaturationSelection::MostInvalidations => tables.iter().max_by(|a, b| {
                let ba = view.estimated_invalidation_count(a);
                let bb = view.estimated_invalidation_count(b);
                ba.partial_cmp(&bb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.tombstone_age(now).cmp(&b.tombstone_age(now)))
                    .then_with(|| a.tombstone_count().cmp(&b.tombstone_count()))
            }),
            SaturationSelection::SmallestOverlap => tables.iter().min_by(|a, b| {
                view.overlap_bytes(level, a)
                    .cmp(&view.overlap_bytes(level, b))
                    .then_with(|| b.tombstone_count().cmp(&a.tombstone_count()))
            }),
        };
        chosen.map(|t| t.meta.id)
    }
}

impl CompactionPolicy for FadePolicy {
    fn pick(&mut self, view: &TreeView<'_>) -> Option<CompactionTask> {
        // keep the TTL allocation in sync with the tree height and size ratio
        let level_count = view.levels.len();
        if level_count == 0 {
            return None;
        }
        if level_count != self.level_count || self.cumulative_ttls.is_empty() {
            self.level_count = level_count;
            self.cumulative_ttls = level_ttls(self.dth, view.config.size_ratio, level_count);
        }

        // 1. delete-driven trigger: any level holding an expired file, the
        //    smallest such level first (ties among levels go to the smallest
        //    level, §4.1.4). Suspended while a live snapshot gates tombstone
        //    GC: a DD compaction exists only to drop its expired tombstones,
        //    which a gated job must retain — running it anyway would rewrite
        //    the file with `oldest_tombstone_ts` intact, leave it expired,
        //    and re-pick it forever. The engine counts the deferral
        //    (`TreeStats::tombstone_gc_delayed`) and the expired files are
        //    picked up on the first pick after the snapshot releases.
        let now = view.now;
        let skip_dd = view.tombstone_gc_gated;
        for level in (0..level_count).filter(|_| !skip_dd) {
            if view.levels[level].is_empty() {
                continue;
            }
            let has_expired =
                view.levels[level].all_tables().any(|t| self.is_expired(t, level, now));
            if !has_expired {
                continue;
            }
            self.ttl_compactions += 1;
            return match view.config.merge_policy {
                MergePolicy::Leveling => {
                    let file_ids = self.pick_dd(view, level);
                    if file_ids.is_empty() {
                        None
                    } else {
                        Some(CompactionTask::LeveledMulti { level, file_ids })
                    }
                }
                MergePolicy::Tiering => Some(CompactionTask::TieredLevel { level }),
            };
        }

        // 2. saturation-driven trigger
        for level in 0..level_count {
            if view.levels[level].is_empty() || !view.is_saturated(level) {
                continue;
            }
            self.saturation_compactions += 1;
            return match view.config.merge_policy {
                MergePolicy::Leveling => self
                    .pick_saturated(view, level)
                    .map(|file_id| CompactionTask::LeveledPartial { level, file_id }),
                MergePolicy::Tiering => Some(CompactionTask::TieredLevel { level }),
            };
        }
        None
    }

    fn name(&self) -> &'static str {
        match self.selection {
            SaturationSelection::MostInvalidations => "fade/sd+dd",
            SaturationSelection::SmallestOverlap => "fade/so+dd",
        }
    }

    fn on_tree_growth(&mut self, level_count: usize) {
        self.recompute_ttls(level_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lethe_lsm::config::LsmConfig;
    use lethe_lsm::level::{Level, Run};
    use lethe_storage::{Entry, Histogram, InMemoryBackend};

    #[test]
    fn ttl_allocation_sums_to_dth_and_grows_exponentially() {
        let dth = 1_000_000;
        let ttls = level_ttls(dth, 10, 3);
        assert_eq!(ttls.len(), 3);
        // cumulative and ending exactly at D_th
        assert!(ttls[0] < ttls[1] && ttls[1] < ttls[2]);
        assert_eq!(*ttls.last().unwrap(), dth);
        // per-level (non-cumulative) TTLs grow by a factor of T
        let d0 = ttls[0] as f64;
        let d1 = (ttls[1] - ttls[0]) as f64;
        let d2 = (ttls[2] - ttls[1]) as f64;
        assert!((d1 / d0 - 10.0).abs() < 0.1, "d1/d0 = {}", d1 / d0);
        assert!((d2 / d1 - 10.0).abs() < 0.1, "d2/d1 = {}", d2 / d1);
    }

    #[test]
    fn ttl_allocation_single_level_is_dth() {
        let ttls = level_ttls(500, 4, 1);
        assert_eq!(ttls, vec![500]);
    }

    fn table_with_tombstones(
        id: u64,
        lo: u64,
        n: u64,
        tombstones: u64,
        tombstone_ts: u64,
        backend: &InMemoryBackend,
    ) -> Arc<SsTable> {
        let cfg = LsmConfig::small_for_test();
        let mut entries: Vec<Entry> = (lo..lo + n)
            .map(|k| Entry::put(k, k, k + 1, Bytes::from(vec![0u8; 32])))
            .collect();
        for i in 0..tombstones {
            entries.push(Entry::point_tombstone(lo + n + i, 10_000 + i));
        }
        entries.sort_by_key(|e| e.sort_key);
        let ts = if tombstones > 0 { Some(tombstone_ts) } else { None };
        Arc::new(SsTable::build(id, entries, vec![], 0, ts, &cfg, backend).unwrap())
    }

    fn make_view<'a>(
        levels: &'a [Level],
        cfg: &'a LsmConfig,
        hist: &'a Histogram,
        now: u64,
    ) -> TreeView<'a> {
        TreeView {
            levels,
            capacities: (0..levels.len()).map(|i| cfg.level_capacity_bytes(i + 1)).collect(),
            now,
            config: cfg,
            sort_key_histogram: hist,
            tombstone_gc_gated: false,
        }
    }

    #[test]
    fn expired_ttl_triggers_dd_compaction_even_without_saturation() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test().with_delete_persistence_secs(1.0);
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new(), Level::new()];
        // a tiny file (far below capacity) whose tombstone was inserted at t=0
        levels[0].runs.push(Run::new(vec![table_with_tombstones(1, 0, 4, 2, 0, &backend)]));
        levels[1].runs.push(Run::new(vec![table_with_tombstones(2, 0, 4, 0, 0, &backend)]));
        let mut policy = FadePolicy::new(1_000_000);

        // well before any TTL expires: nothing to do
        let view = make_view(&levels, &cfg, &hist, 1_000);
        assert!(policy.pick(&view).is_none());

        // after D_th the file must be compacted regardless of saturation
        let view = make_view(&levels, &cfg, &hist, 2_000_000);
        assert_eq!(
            policy.pick(&view),
            Some(CompactionTask::LeveledMulti { level: 0, file_ids: vec![1] })
        );
        assert_eq!(policy.ttl_compactions(), 1);
        assert_eq!(policy.saturation_compactions(), 0);
    }

    #[test]
    fn files_without_tombstones_never_expire() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test();
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![table_with_tombstones(1, 0, 8, 0, 0, &backend)]));
        let mut policy = FadePolicy::new(100);
        let view = make_view(&levels, &cfg, &hist, u64::MAX / 2);
        assert!(policy.pick(&view).is_none());
    }

    #[test]
    fn dd_compacts_every_expired_file_oldest_first() {
        let backend = InMemoryBackend::new();
        let cfg = LsmConfig::small_for_test();
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![
            table_with_tombstones(1, 0, 4, 1, 500, &backend),
            table_with_tombstones(2, 100, 4, 1, 100, &backend), // older tombstone
            table_with_tombstones(3, 200, 4, 0, 0, &backend),   // no tombstones: never expires
        ]));
        let mut policy = FadePolicy::new(1_000);
        let view = make_view(&levels, &cfg, &hist, 10_000);
        // both expired files are compacted in one job, the one holding the
        // oldest tombstone first; the tombstone-free file is left alone
        assert_eq!(
            policy.pick(&view),
            Some(CompactionTask::LeveledMulti { level: 0, file_ids: vec![2, 1] })
        );
    }

    #[test]
    fn saturation_uses_sd_selection_by_default() {
        let backend = InMemoryBackend::new();
        let mut cfg = LsmConfig::small_for_test();
        cfg.delete_persistence_threshold = Some(u64::MAX);
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new(), Level::new()];
        // file 2 holds many tombstones (higher b), file 1 has none
        levels[0].runs.push(Run::new(vec![
            table_with_tombstones(1, 0, 64, 0, 0, &backend),
            table_with_tombstones(2, 100, 64, 16, 0, &backend),
        ]));
        let mut policy = FadePolicy::new(u64::MAX);
        let mut view = make_view(&levels, &cfg, &hist, 10);
        view.capacities = vec![1, u64::MAX]; // force saturation of level 0
        assert_eq!(
            policy.pick(&view),
            Some(CompactionTask::LeveledPartial { level: 0, file_id: 2 })
        );
        assert_eq!(policy.saturation_compactions(), 1);
        assert_eq!(policy.name(), "fade/sd+dd");

        // the SO variant prefers the file with the smallest overlap instead
        let mut policy = FadePolicy::with_selection(u64::MAX, SaturationSelection::SmallestOverlap);
        let mut view = make_view(&levels, &cfg, &hist, 10);
        view.capacities = vec![1, u64::MAX];
        assert!(matches!(policy.pick(&view), Some(CompactionTask::LeveledPartial { level: 0, .. })));
        assert_eq!(policy.name(), "fade/so+dd");
    }

    #[test]
    fn tiering_expiry_compacts_whole_level() {
        let backend = InMemoryBackend::new();
        let mut cfg = LsmConfig::small_for_test();
        cfg.merge_policy = MergePolicy::Tiering;
        let hist = Histogram::new(0, 1 << 20, 16);
        let mut levels = vec![Level::new()];
        levels[0].runs.push(Run::new(vec![table_with_tombstones(1, 0, 4, 1, 0, &backend)]));
        let mut policy = FadePolicy::new(1_000);
        let view = make_view(&levels, &cfg, &hist, 5_000);
        assert_eq!(policy.pick(&view), Some(CompactionTask::TieredLevel { level: 0 }));
    }

    #[test]
    fn on_tree_growth_rescales_ttls() {
        let mut policy = FadePolicy::new(1_000_000);
        policy.on_tree_growth(2);
        let two = policy.cumulative_ttls().to_vec();
        policy.on_tree_growth(4);
        let four = policy.cumulative_ttls().to_vec();
        assert_eq!(two.len(), 2);
        assert_eq!(four.len(), 4);
        assert_eq!(*two.last().unwrap(), 1_000_000);
        assert_eq!(*four.last().unwrap(), 1_000_000);
        // with more levels the first level's share shrinks
        assert!(four[0] < two[0]);
    }
}
