//! Per-shard background maintenance worker.
//!
//! A [`Compactor`] owns one OS thread that drains a shard's maintenance
//! work — flushing frozen write buffers and running FADE/saturation
//! compactions — through the tree's three-phase job cycle:
//!
//! 1. **plan** (shard lock, microseconds): ask the policy for work, pin the
//!    input files of the current version;
//! 2. **execute** (no lock): read, merge and build the output files against
//!    the pinned immutable inputs;
//! 3. **apply** (shard lock, microseconds): commit the manifest edit and
//!    install the new version with one pointer swap.
//!
//! Readers never touch the shard lock at all (they go through
//! [`lethe_lsm::TreeReader`]); writers share the shard lock with phases 1
//! and 3 only, so a multi-second merge no longer stalls the shard.
//!
//! ## Coordination protocol
//!
//! * [`Compactor::wake`] nudges the worker (cheap; called from the write
//!   path when a buffer freezes or level 0 piles up).
//! * [`Compactor::drain`] blocks until every unit of work that existed at
//!   call time is done — the deterministic quiescing primitive behind
//!   `maintain()`/`persist()`.
//! * [`Compactor::pause`] returns a guard that keeps the worker parked
//!   between jobs; foreground structural operations (secondary range
//!   deletes, forced full compactions, white-box shard access) take it so
//!   they never race a background version install.
//! * [`Compactor::wait_for_progress`] parks the calling writer until the
//!   worker completes a job or a pass — the blocking half of write
//!   backpressure.
//!
//! A job that fails (I/O error, injected crash) leaves the tree unchanged —
//! [`lethe_lsm::LsmTree::apply_job`] installs nothing on error and the
//! frozen buffer is only cleared by a successful flush — so the in-memory
//! store stays consistent; the error is recorded and surfaced by the next
//! [`Compactor::drain`].

use crate::engine::Lethe;
use lethe_storage::{Result, StorageError};
use lethe_sync::{Condvar, LockRank, Mutex, MutexGuard};
use std::sync::Arc;
use std::thread::JoinHandle;

#[derive(Debug, Default)]
struct WorkerState {
    /// Work may be available; cleared when a pass starts.
    wake: bool,
    /// The worker is inside a pass (between jobs it may hold no locks).
    busy: bool,
    /// Number of outstanding [`Compactor::pause`] guards.
    pause_requests: usize,
    /// Shut the thread down at the next opportunity.
    shutdown: bool,
    /// Completed passes (a pass ends when no work remains or on pause).
    passes: u64,
    /// Successfully applied jobs.
    jobs_done: u64,
    /// First unreported background failure, surfaced by `drain`.
    error: Option<String>,
}

struct Shared {
    engine: Arc<Mutex<Lethe>>,
    state: Mutex<WorkerState>,
    cv: Condvar,
}

impl Shared {
    /// Locks the worker-state mutex (ranked: `WorkerState` sits below the
    /// engine lock, so callers must not already hold the shard lock).
    fn lock_state(&self) -> MutexGuard<'_, WorkerState> {
        self.state.lock()
    }

    /// Waits on the worker condvar, re-locking the state mutex on wake.
    fn wait_on<'a>(&'a self, guard: MutexGuard<'a, WorkerState>) -> MutexGuard<'a, WorkerState> {
        self.cv.wait(guard, &self.state)
    }
}

/// Handle to a shard's background maintenance thread. Dropping it shuts the
/// thread down (after the current job, if any) and joins it.
pub struct Compactor {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

/// Keeps the worker parked between jobs while held; see
/// [`Compactor::pause`].
pub struct PauseGuard {
    shared: Arc<Shared>,
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        let mut st = self.shared.lock_state();
        st.pause_requests -= 1;
        // the pause may have interrupted a pass mid-way (its wake flag was
        // already consumed): re-arm it so pending work — an unflushed
        // frozen buffer, TTL-due compactions — resumes without waiting for
        // the next external wake
        st.wake = true;
        self.shared.cv.notify_all();
    }
}

impl Compactor {
    /// Spawns the worker thread for `engine`.
    pub fn spawn(engine: Arc<Mutex<Lethe>>) -> Compactor {
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(LockRank::WorkerState, WorkerState::default()),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("lethe-compactor".into())
            .spawn(move || worker_loop(thread_shared))
            .expect("spawning the compactor thread");
        Compactor { shared, handle: Some(handle) }
    }

    /// Nudges the worker: work may be available.
    pub fn wake(&self) {
        let mut st = self.shared.lock_state();
        st.wake = true;
        self.shared.cv.notify_all();
    }

    /// Blocks until the worker has drained every unit of work that existed
    /// when the call was made, then reports (and clears) any background
    /// failure encountered since the last drain.
    pub fn drain(&self) -> Result<()> {
        let mut st = self.shared.lock_state();
        st.wake = true;
        self.shared.cv.notify_all();
        loop {
            if let Some(e) = st.error.take() {
                return Err(StorageError::InvalidOperation(format!("background maintenance: {e}")));
            }
            if (!st.busy && !st.wake) || st.shutdown {
                return Ok(());
            }
            st = self.shared.wait_on(st);
        }
    }

    /// Parks the worker between jobs and returns a guard holding it there.
    /// Blocks until any in-flight job completes. The caller must **not**
    /// hold the shard lock while pausing (the in-flight job needs it to
    /// finish).
    pub fn pause(&self) -> PauseGuard {
        let mut st = self.shared.lock_state();
        st.pause_requests += 1;
        self.shared.cv.notify_all();
        while st.busy {
            st = self.shared.wait_on(st);
        }
        PauseGuard { shared: Arc::clone(&self.shared) }
    }

    /// Parks the calling thread until the worker applies a job or completes
    /// a pass (the blocking half of write backpressure: the stalled writer
    /// waits here for the flush/compaction that unblocks it).
    pub fn wait_for_progress(&self) {
        let mut st = self.shared.lock_state();
        let jobs0 = st.jobs_done;
        let passes0 = st.passes;
        st.wake = true;
        self.shared.cv.notify_all();
        while st.jobs_done == jobs0
            && st.passes == passes0
            && st.error.is_none()
            && !st.shutdown
        {
            st = self.shared.wait_on(st);
        }
    }

    /// Jobs successfully applied so far (diagnostic).
    pub fn jobs_done(&self) -> u64 {
        self.shared.lock_state().jobs_done
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        // wait for work (or shutdown), respecting pauses
        {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if st.wake && st.pause_requests == 0 {
                    break;
                }
                st = shared.wait_on(st);
            }
            st.wake = false;
            st.busy = true;
        }
        // drain available work, one plan → execute → apply cycle at a time
        loop {
            {
                let st = shared.lock_state();
                if st.shutdown || st.pause_requests > 0 {
                    break;
                }
            }
            match run_one_job(&shared.engine) {
                Ok(true) => {
                    let mut st = shared.lock_state();
                    st.jobs_done += 1;
                    shared.cv.notify_all();
                }
                Ok(false) => break,
                Err(e) => {
                    let mut st = shared.lock_state();
                    st.error.get_or_insert_with(|| e.to_string());
                    shared.cv.notify_all();
                    break;
                }
            }
        }
        {
            let mut st = shared.lock_state();
            st.busy = false;
            st.passes += 1;
            shared.cv.notify_all();
        }
    }
}

/// One three-phase job cycle. Returns `Ok(false)` when no work is pending.
fn run_one_job(engine: &Mutex<Lethe>) -> Result<bool> {
    // phase 1 — plan under the shard lock (cheap pointer work)
    let (plan, ctx) = {
        let mut eng = engine.lock();
        let tree = eng.tree_mut();
        match tree.plan_job(true) {
            Some(plan) => {
                let ctx = tree.build_ctx();
                (plan, ctx)
            }
            None => return Ok(false),
        }
    };
    // phase 2 — execute without any lock (the expensive merge I/O)
    let out = plan.execute(&ctx)?;
    // phase 3 — apply under the shard lock (manifest edit + version install)
    let mut eng = engine.lock();
    let applied = eng.tree_mut().apply_job(plan, out)?;
    // a refused (stale) plan aborted its output and applied nothing: report
    // no progress so jobs_done never counts phantom work
    Ok(applied)
}
