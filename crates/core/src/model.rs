//! Analytical cost model — the closed forms of Table 2.
//!
//! Every row of the paper's Table 2 is expressed as a function of the Table 1
//! parameters, for each of the four designs (state of the art, FADE only,
//! KiWi only, Lethe = FADE + KiWi) under both merge policies. The benchmark
//! harness evaluates the model at the Table 1 reference point and
//! cross-checks the orderings (better / worse / same / tunable markers of the
//! table) against the empirical engines.

use serde::{Deserialize, Serialize};

/// Which of the four designs of Table 2 a cost is evaluated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Design {
    /// State-of-the-art LSM engine (no FADE, no KiWi).
    StateOfTheArt,
    /// FADE compactions on the classic layout.
    Fade,
    /// KiWi layout with state-of-the-art compactions.
    Kiwi,
    /// Lethe: FADE + KiWi.
    Lethe,
}

impl Design {
    /// All four designs, in the column order of Table 2.
    pub const ALL: [Design; 4] = [Design::StateOfTheArt, Design::Fade, Design::Kiwi, Design::Lethe];

    /// True if the design uses FADE (timely delete persistence).
    pub fn has_fade(&self) -> bool {
        matches!(self, Design::Fade | Design::Lethe)
    }

    /// True if the design uses the KiWi interweaved layout.
    pub fn has_kiwi(&self) -> bool {
        matches!(self, Design::Kiwi | Design::Lethe)
    }
}

/// Merge policy column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeStyle {
    /// One run per level.
    Leveling,
    /// Up to `T` runs per level.
    Tiering,
}

/// The Table 1 parameters the model is evaluated at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Entries inserted in the tree, including tombstones (`N`).
    pub entries: f64,
    /// Size ratio (`T`).
    pub size_ratio: f64,
    /// Number of disk levels with `N` entries (`L`).
    pub levels: f64,
    /// Entries per disk page (`B`).
    pub entries_per_page: f64,
    /// Average entry size in bytes (`E`).
    pub entry_size: f64,
    /// Memory buffer size in pages (`P`).
    pub buffer_pages: f64,
    /// Bits of Bloom-filter memory per entry (`m/N`).
    pub bits_per_entry: f64,
    /// Tombstone size ratio (`λ`).
    pub tombstone_size_ratio: f64,
    /// Pages per delete tile (`h`).
    pub pages_per_tile: f64,
    /// Entries remaining after deletes are persisted (`N_δ`).
    pub entries_after_deletes: f64,
    /// Disk levels needed for `N_δ` entries (`L_δ`).
    pub levels_after_deletes: f64,
    /// Ingestion rate of unique entries per second (`I`).
    pub ingestion_rate: f64,
    /// Selectivity of long range lookups (`s`).
    pub long_range_selectivity: f64,
    /// Delete persistence threshold in seconds (`D_th`).
    pub delete_persistence_threshold_secs: f64,
}

impl Default for ModelParams {
    /// The reference values of Table 1.
    fn default() -> Self {
        let entries = (1u64 << 20) as f64;
        ModelParams {
            entries,
            size_ratio: 10.0,
            levels: 3.0,
            entries_per_page: 4.0,
            entry_size: 1024.0,
            buffer_pages: 512.0,
            bits_per_entry: 10.0,
            tombstone_size_ratio: 0.1,
            pages_per_tile: 16.0,
            // ~30% of the entries are invalidated at the reference point
            // (3·10^5 point deletes + 10^3 range deletes of σ = 5·10^-4)
            entries_after_deletes: entries * 0.7,
            levels_after_deletes: 3.0,
            ingestion_rate: 1024.0,
            long_range_selectivity: 1.0e-3,
            delete_persistence_threshold_secs: 60.0,
        }
    }
}

impl ModelParams {
    /// Bloom filter false positive rate `e^{−(m/N)·ln²2}` over `n` entries,
    /// assuming the same total filter memory.
    fn fpr_over(&self, n: f64) -> f64 {
        let total_bits = self.bits_per_entry * self.entries;
        (-(total_bits / n) * std::f64::consts::LN_2.powi(2)).exp()
    }

    fn n(&self, design: Design) -> f64 {
        if design.has_fade() { self.entries_after_deletes } else { self.entries }
    }

    fn l(&self, design: Design) -> f64 {
        if design.has_fade() { self.levels_after_deletes } else { self.levels }
    }

    fn h(&self, design: Design) -> f64 {
        if design.has_kiwi() { self.pages_per_tile.max(1.0) } else { 1.0 }
    }

    /// Number of entries resident in the tree (Table 2 row 1).
    pub fn entries_in_tree(&self, design: Design, _style: MergeStyle) -> f64 {
        self.n(design)
    }

    /// Worst-case space amplification for a workload *with deletes*
    /// (Table 2 row 3).
    pub fn space_amplification_with_deletes(&self, design: Design, style: MergeStyle) -> f64 {
        let lambda = self.tombstone_size_ratio;
        match (design.has_fade(), style) {
            // FADE bounds it back to the update-only worst case
            (true, MergeStyle::Leveling) => 1.0 / self.size_ratio,
            (true, MergeStyle::Tiering) => self.size_ratio,
            // the paper's worst-case expressions: a few tombstone bytes can
            // invalidate many key-value bytes, so the bound grows with N
            (false, MergeStyle::Leveling) => {
                ((1.0 - lambda) * self.entries + 1.0) / (lambda * self.size_ratio) / self.entries
            }
            (false, MergeStyle::Tiering) => 1.0 / (1.0 - lambda),
        }
    }

    /// Worst-case space amplification without deletes (Table 2 row 2).
    pub fn space_amplification_without_deletes(&self, _design: Design, style: MergeStyle) -> f64 {
        match style {
            MergeStyle::Leveling => 1.0 / self.size_ratio,
            MergeStyle::Tiering => self.size_ratio,
        }
    }

    /// Total bytes written to the device over the tree's lifetime
    /// (Table 2 row 4).
    pub fn total_bytes_written(&self, design: Design, style: MergeStyle) -> f64 {
        let n = self.n(design);
        let l = self.l(design);
        match style {
            MergeStyle::Leveling => n * self.entry_size * l * self.size_ratio,
            MergeStyle::Tiering => n * self.entry_size * l,
        }
    }

    /// Write amplification (Table 2 row 5).
    pub fn write_amplification(&self, design: Design, style: MergeStyle) -> f64 {
        let l = self.l(design);
        match style {
            MergeStyle::Leveling => l * self.size_ratio,
            MergeStyle::Tiering => l,
        }
    }

    /// Worst-case delete persistence latency in seconds (Table 2 row 6).
    pub fn delete_persistence_latency_secs(&self, design: Design, style: MergeStyle) -> f64 {
        if design.has_fade() {
            return self.delete_persistence_threshold_secs;
        }
        let exp = match style {
            MergeStyle::Leveling => self.levels - 1.0,
            MergeStyle::Tiering => self.levels,
        };
        self.size_ratio.powf(exp) * self.buffer_pages * self.entries_per_page
            / self.ingestion_rate
    }

    /// Expected I/O cost of a point lookup on a non-existing key
    /// (Table 2 row 7).
    pub fn zero_result_lookup_cost(&self, design: Design, style: MergeStyle) -> f64 {
        let fpr = self.fpr_over(self.n(design));
        let h = self.h(design);
        match style {
            MergeStyle::Leveling => h * fpr,
            MergeStyle::Tiering => h * fpr * self.size_ratio,
        }
    }

    /// Expected I/O cost of a point lookup on an existing key
    /// (Table 2 row 8).
    pub fn existing_lookup_cost(&self, design: Design, style: MergeStyle) -> f64 {
        let fpr = self.fpr_over(self.n(design));
        let h = self.h(design);
        match style {
            MergeStyle::Leveling => 1.0 + h * fpr,
            MergeStyle::Tiering => 1.0 + h * fpr * self.size_ratio,
        }
    }

    /// Expected I/O cost of a short range lookup (Table 2 row 9).
    pub fn short_range_lookup_cost(&self, design: Design, style: MergeStyle) -> f64 {
        let l = self.l(design);
        let h = self.h(design);
        match style {
            MergeStyle::Leveling => h * l,
            MergeStyle::Tiering => h * l * self.size_ratio,
        }
    }

    /// Expected I/O cost of a long range lookup (Table 2 row 10).
    pub fn long_range_lookup_cost(&self, design: Design, style: MergeStyle) -> f64 {
        let n = self.n(design);
        let s = self.long_range_selectivity;
        match style {
            MergeStyle::Leveling => s * n / self.entries_per_page,
            MergeStyle::Tiering => self.size_ratio * s * n / self.entries_per_page,
        }
    }

    /// Amortised insert/update cost (Table 2 row 11).
    pub fn insert_cost(&self, design: Design, style: MergeStyle) -> f64 {
        let l = self.l(design);
        match style {
            MergeStyle::Leveling => l * self.size_ratio / self.entries_per_page,
            MergeStyle::Tiering => l / self.entries_per_page,
        }
    }

    /// I/O cost of a secondary range delete (Table 2 row 12).
    pub fn secondary_range_delete_cost(&self, design: Design, _style: MergeStyle) -> f64 {
        let n = self.n(design);
        let h = self.h(design);
        n / (self.entries_per_page * h)
    }

    /// Main memory footprint in bits (Table 2 row 13): Bloom filter memory
    /// plus fence-pointer metadata. `k` is taken as the sort-key size and `c`
    /// as the delete-key size, both in bits (64 here).
    pub fn memory_footprint_bits(&self, design: Design, _style: MergeStyle) -> f64 {
        let key_bits = 64.0;
        let n = self.n(design);
        let h = self.h(design);
        let filter_bits = self.bits_per_entry * self.entries;
        let sort_fences = n * key_bits / (self.entries_per_page * h);
        let delete_fences = if design.has_kiwi() {
            n * key_bits / self.entries_per_page
        } else {
            0.0
        };
        filter_bits + sort_fences + delete_fences
    }
}

/// One evaluated row of Table 2 for all four designs (used by the harness to
/// print the table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Metric name as it appears in the paper.
    pub metric: &'static str,
    /// Values in design order: state of the art, FADE, KiWi, Lethe.
    pub values: [f64; 4],
}

/// Evaluates every row of Table 2 at `params` under the given merge style.
pub fn table2(params: &ModelParams, style: MergeStyle) -> Vec<Table2Row> {
    let eval = |f: &dyn Fn(Design) -> f64| {
        let mut values = [0.0; 4];
        for (i, d) in Design::ALL.iter().enumerate() {
            values[i] = f(*d);
        }
        values
    };
    vec![
        Table2Row {
            metric: "entries in tree",
            values: eval(&|d| params.entries_in_tree(d, style)),
        },
        Table2Row {
            metric: "space amplification (no deletes)",
            values: eval(&|d| params.space_amplification_without_deletes(d, style)),
        },
        Table2Row {
            metric: "space amplification (with deletes)",
            values: eval(&|d| params.space_amplification_with_deletes(d, style)),
        },
        Table2Row {
            metric: "total bytes written",
            values: eval(&|d| params.total_bytes_written(d, style)),
        },
        Table2Row {
            metric: "write amplification",
            values: eval(&|d| params.write_amplification(d, style)),
        },
        Table2Row {
            metric: "delete persistence latency (s)",
            values: eval(&|d| params.delete_persistence_latency_secs(d, style)),
        },
        Table2Row {
            metric: "zero-result point lookup (I/Os)",
            values: eval(&|d| params.zero_result_lookup_cost(d, style)),
        },
        Table2Row {
            metric: "existing point lookup (I/Os)",
            values: eval(&|d| params.existing_lookup_cost(d, style)),
        },
        Table2Row {
            metric: "short range lookup (I/Os)",
            values: eval(&|d| params.short_range_lookup_cost(d, style)),
        },
        Table2Row {
            metric: "long range lookup (I/Os)",
            values: eval(&|d| params.long_range_lookup_cost(d, style)),
        },
        Table2Row {
            metric: "insert/update cost (I/Os)",
            values: eval(&|d| params.insert_cost(d, style)),
        },
        Table2Row {
            metric: "secondary range delete (I/Os)",
            values: eval(&|d| params.secondary_range_delete_cost(d, style)),
        },
        Table2Row {
            metric: "memory footprint (bits)",
            values: eval(&|d| params.memory_footprint_bits(d, style)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ModelParams {
        ModelParams::default()
    }

    #[test]
    fn fade_improves_persistence_latency_to_dth() {
        let p = p();
        for style in [MergeStyle::Leveling, MergeStyle::Tiering] {
            let soa = p.delete_persistence_latency_secs(Design::StateOfTheArt, style);
            let fade = p.delete_persistence_latency_secs(Design::Fade, style);
            let lethe = p.delete_persistence_latency_secs(Design::Lethe, style);
            assert!(soa > fade, "state of the art should be worse ({soa} vs {fade})");
            assert_eq!(fade, p.delete_persistence_threshold_secs);
            assert_eq!(lethe, fade);
        }
        // tiering is worse than leveling by a factor of T for the baseline
        let lvl = p.delete_persistence_latency_secs(Design::StateOfTheArt, MergeStyle::Leveling);
        let tier = p.delete_persistence_latency_secs(Design::StateOfTheArt, MergeStyle::Tiering);
        assert!((tier / lvl - p.size_ratio).abs() < 1e-9);
    }

    #[test]
    fn fade_reduces_entries_and_lookup_costs() {
        let p = p();
        assert!(
            p.entries_in_tree(Design::Fade, MergeStyle::Leveling)
                < p.entries_in_tree(Design::StateOfTheArt, MergeStyle::Leveling)
        );
        // fewer hashed entries ⇒ lower FPR ⇒ cheaper zero-result lookups
        assert!(
            p.zero_result_lookup_cost(Design::Fade, MergeStyle::Leveling)
                < p.zero_result_lookup_cost(Design::StateOfTheArt, MergeStyle::Leveling)
        );
    }

    #[test]
    fn kiwi_trades_lookups_for_secondary_deletes() {
        let p = p();
        for style in [MergeStyle::Leveling, MergeStyle::Tiering] {
            // KiWi lookups are more expensive by ~h
            assert!(
                p.zero_result_lookup_cost(Design::Kiwi, style)
                    > p.zero_result_lookup_cost(Design::StateOfTheArt, style)
            );
            // but secondary range deletes are cheaper by h
            let soa = p.secondary_range_delete_cost(Design::StateOfTheArt, style);
            let kiwi = p.secondary_range_delete_cost(Design::Kiwi, style);
            assert!((soa / kiwi - p.pages_per_tile).abs() < 1e-9);
        }
    }

    #[test]
    fn lethe_combines_both_effects() {
        let p = p();
        let style = MergeStyle::Leveling;
        // cheaper secondary deletes than both the baseline and FADE
        assert!(
            p.secondary_range_delete_cost(Design::Lethe, style)
                < p.secondary_range_delete_cost(Design::Fade, style)
        );
        // persistence bounded like FADE
        assert_eq!(
            p.delete_persistence_latency_secs(Design::Lethe, style),
            p.delete_persistence_threshold_secs
        );
        // lookup cost between the baseline (better) and raw KiWi (worse),
        // because FADE's smaller N offsets part of the h penalty
        let soa = p.zero_result_lookup_cost(Design::StateOfTheArt, style);
        let kiwi = p.zero_result_lookup_cost(Design::Kiwi, style);
        let lethe = p.zero_result_lookup_cost(Design::Lethe, style);
        assert!(lethe > soa);
        assert!(lethe < kiwi);
    }

    #[test]
    fn write_amplification_orderings() {
        let p = p();
        // leveling pays T× more write amplification than tiering
        let lvl = p.write_amplification(Design::StateOfTheArt, MergeStyle::Leveling);
        let tier = p.write_amplification(Design::StateOfTheArt, MergeStyle::Tiering);
        assert!((lvl / tier - p.size_ratio).abs() < 1e-9);
        // KiWi does not change write amplification
        assert_eq!(lvl, p.write_amplification(Design::Kiwi, MergeStyle::Leveling));
    }

    #[test]
    fn space_amplification_with_deletes_is_bounded_by_fade() {
        let p = p();
        let soa = p.space_amplification_with_deletes(Design::StateOfTheArt, MergeStyle::Leveling);
        let fade = p.space_amplification_with_deletes(Design::Fade, MergeStyle::Leveling);
        assert!(soa > fade, "soa {soa} should exceed fade {fade}");
        assert_eq!(fade, 1.0 / p.size_ratio);
        let soa_t = p.space_amplification_with_deletes(Design::StateOfTheArt, MergeStyle::Tiering);
        let fade_t = p.space_amplification_with_deletes(Design::Fade, MergeStyle::Tiering);
        assert!(soa_t > 1.0);
        assert_eq!(fade_t, p.size_ratio);
    }

    #[test]
    fn table2_has_all_rows_for_both_styles() {
        let p = p();
        for style in [MergeStyle::Leveling, MergeStyle::Tiering] {
            let rows = table2(&p, style);
            assert_eq!(rows.len(), 13);
            for row in &rows {
                assert!(row.values.iter().all(|v| v.is_finite()), "{}", row.metric);
            }
        }
    }

    #[test]
    fn design_flags() {
        assert!(Design::Lethe.has_fade() && Design::Lethe.has_kiwi());
        assert!(Design::Fade.has_fade() && !Design::Fade.has_kiwi());
        assert!(!Design::Kiwi.has_fade() && Design::Kiwi.has_kiwi());
        assert!(!Design::StateOfTheArt.has_fade() && !Design::StateOfTheArt.has_kiwi());
        assert_eq!(Design::ALL.len(), 4);
    }
}
